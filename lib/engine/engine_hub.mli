(** The inter-domain message hub: the native transport of
    {!Engine_domains}.

    One hub is shared by every shard of a runtime; each shard holds a
    {!view} — a {!Netobj_transport.Transport.t} whose send enqueues into
    the destination shard's mutex-guarded mailbox and whose [pump]
    drains the {e owning} shard's mailbox, invoking each message's
    handler in a fresh fiber of that shard's scheduler (the transport
    delivery contract).  Messages are reliable, unordered across
    mailboxes, at-most-once; there is no coalescing ([post] degenerates
    to [send]) and no virtual-clock latency — a message is deliverable
    as soon as the destination shard next pumps.

    Fault surface: only [crash]/[restore]/[is_crashed] are implemented
    (a crashed space drops its traffic at both ends, like every other
    backend); partitions, bursts and spikes require the deterministic
    sim engine and raise [Invalid_argument].  Crash flags are read
    without the mailbox locks on the send path, so flips should happen
    between {!Engine.S.run} episodes (the runtime's control-plane
    discipline) — a racing reader sees at worst a message that was
    already in flight when the crash landed. *)

module Sched = Netobj_sched.Sched
module Transport = Netobj_transport.Transport

type t

(** [create ~nspaces ~nshards ~shard_of_space] — [shard_of_space] must
    be total on [0 .. nspaces-1]. *)
val create :
  nspaces:int -> nshards:int -> shard_of_space:(int -> int) -> unit -> t

(** The transport endpoint for one shard; [sched] is where delivery
    fibers are spawned.  Call once per shard. *)
val view : t -> shard:int -> sched:Sched.t -> Transport.t

(** {2 Blocking and wakeups}

    The engine parks idle workers on per-worker monitors instead of
    polling, so a cross-domain handoff costs a futex wake rather than a
    sleep quantum.  The hub supplies the lock-level pieces the engine's
    park/probe protocol needs; the monitors themselves live in the
    engine (a worker may own several shards).

    Wakes are {e deferred}: an enqueue never signals directly (waking a
    parked destination mid-batch invites wake-up preemption — the OS
    switches to the woken domain at once and every message becomes a
    context switch).  Instead the sending shard records a wake debt,
    which its drive loop settles with {!flush_wakes} once per work
    iteration; a whole batch of messages then costs one wake.  A worker
    must always flush its shards' debts before blocking.

    [set_wake_hook] registers a callback run on {e every} enqueue,
    {e while holding the destination shard's mailbox lock}; its return
    value decides whether a wake debt is recorded.  The engine's hook
    atomically clears the destination worker's parked flag and asks for
    a wake only when the flag was set — so "parked and all mailboxes
    empty" can be read race-free, and a destination that is already
    awake costs nothing.  The hook must not take locks. *)
val set_wake_hook : t -> (int -> bool) -> unit

(** [set_waker t f] — [f shard] settles one wake debt by signalling
    whatever worker owns [shard]; called by {!flush_wakes} with no
    mailbox lock held. *)
val set_waker : t -> (int -> unit) -> unit

(** Settle every wake debt recorded by this shard's sends since the
    last flush.  Call from the owning worker's domain only. *)
val flush_wakes : t -> shard:int -> unit

(** Mailbox lock, exposed so a worker can verify several of its
    mailboxes empty while holding all their locks (the parked-flag
    publication step).  Lock in increasing shard order. *)
val lock_mailbox : t -> shard:int -> unit

val unlock_mailbox : t -> shard:int -> unit

(** Is the shard's mailbox non-empty?  Call with the lock held. *)
val has_mail : t -> shard:int -> bool
