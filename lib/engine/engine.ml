module Sched = Netobj_sched.Sched
module Net = Netobj_net.Net
module Transport = Netobj_transport.Transport

type shard = {
  s_id : int;
  s_sched : Sched.t;
  s_net : Net.t;
  s_transport : Transport.t;
}

type params = {
  p_seed : int64;
  p_nspaces : int;
  p_policy : Sched.policy;
  p_edge : Net.edge_config;
  p_domains : int;
  p_mk_transport : (Sched.t -> Net.t -> Transport.t) option;
}

module type S = sig
  type t

  val name : string

  val deterministic : bool

  val create : params -> t

  val shards : t -> shard array

  val shard_of_space : t -> int -> shard

  val spawn : t -> shard:int -> ?name:string -> (unit -> unit) -> unit

  val run : ?max_steps:int -> ?until:float -> t -> int

  val close : t -> unit
end

type instance = Inst : (module S with type t = 'a) * 'a -> instance

let make (module E : S) params = Inst ((module E), E.create params)

let name (Inst ((module E), _)) = E.name

let deterministic (Inst ((module E), _)) = E.deterministic

let shards (Inst ((module E), t)) = E.shards t

let shard_of_space (Inst ((module E), t)) i = E.shard_of_space t i

let spawn (Inst ((module E), t)) ~shard ?name f = E.spawn t ~shard ?name f

let run ?max_steps ?until (Inst ((module E), t)) = E.run ?max_steps ?until t

let close (Inst ((module E), t)) = E.close t
