(** The domain-parallel engine: spaces sharded across OCaml 5 domains.

    [min nspaces p_domains] shards are created, spaces block-partitioned
    across them (space [i] owned by shard [i * nshards / nspaces]):
    contiguous spaces share a shard, so workloads with neighbour
    locality keep most traffic off the inter-domain hub.  Each shard is
    a complete cooperative world — its own scheduler, virtual clock and
    transport endpoint — and shards exchange messages through the
    {!Engine_hub} mailboxes (or through a per-shard custom transport
    when the config supplies one).

    Shards are driven by a {e worker pool}: sharding (ownership — which
    space's state may touch which domain) is decoupled from OS
    parallelism.  By default the pool holds
    [min nshards (Domain.recommended_domain_count ())] worker domains,
    each driving a contiguous block of shards, so an oversubscribed
    host multiplexes shards on fewer domains instead of thrashing
    context switches; the [NETOBJ_DOMAINS_POOL] environment variable
    overrides the cap (the test suites force a real multi-domain pool
    with it so the cross-domain protocol is exercised even on small
    machines).

    {!Engine.S.run} requires [~until]: it spawns the pool, drives every
    shard to quiescence at that virtual time — no ready fiber, no timer
    due at or before [until], no undelivered message anywhere — and
    joins the domains before returning, so everything outside [run] is
    plain sequential code with full happens-before.  Virtual clocks are
    per-shard and advance independently inside an episode; they all
    reach [until] by its end, which is what the protocol's timers
    (retries, leases, call timeouts) need — none of them compares
    instants across spaces.

    Idle workers park on per-worker monitors and senders wake them in
    batches (see {!Engine_hub} on deferred wakes).  Global quiescence on
    the hub path: when the last worker parks with all of its mailboxes
    verified empty, worker 0 runs one final sweep of its own shards,
    and stops the episode only if that sweep did nothing and every
    worker is still parked — at that point no message can exist
    anywhere.  Custom transports fall back to a polling double-collect
    over a global activity counter, since the engine cannot observe
    their deliveries.

    Not deterministic: cross-shard message arrival order depends on real
    scheduling.  The mc/chaos/replay harnesses reject this engine; the
    safety arguments here are the ownership discipline (see {!Engine})
    plus the conformance and storm suites. *)

include Engine.S
