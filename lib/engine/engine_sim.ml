module Sched = Netobj_sched.Sched
module Net = Netobj_net.Net
module Transport_sim = Netobj_transport.Transport_sim
module Obs = Netobj_obs.Obs

type t = { shard : Engine.shard }

let name = "sim"

let deterministic = true

(* The construction order (scheduler, then clock hookup, then network,
   then transport) is the frozen pre-engine sequence: seeds and RNG
   streams derive identically, so mc schedules and chaos traces recorded
   before the engine split replay byte-for-byte. *)
let create (p : Engine.params) =
  let sched = Sched.create ~policy:p.p_policy () in
  (* Trace timestamps follow the virtual clock from here on (enable
     observability *before* creating the runtime so nothing is emitted
     against the default event-counter clock). *)
  Obs.set_clock (fun () -> Sched.now sched);
  let net = Net.create ~sched ~seed:p.p_seed () in
  Net.set_all_edges net p.p_edge;
  (* The simulated network is always created (the model checker's
     delivery-choice hook and edge shaping live there); a custom
     transport simply routes traffic elsewhere and leaves it idle. *)
  let tr =
    match p.p_mk_transport with
    | Some f -> f sched net
    | None -> Transport_sim.of_net net
  in
  {
    shard =
      { Engine.s_id = 0; s_sched = sched; s_net = net; s_transport = tr };
  }

let shards t = [| t.shard |]

let shard_of_space t _ = t.shard

let spawn t ~shard:_ ?name f = Sched.spawn t.shard.Engine.s_sched ?name f

let run ?max_steps ?until t =
  Sched.run ?max_steps ?until t.shard.Engine.s_sched

let close _ = ()
