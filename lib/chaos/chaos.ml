module R = Netobj_core.Runtime
module Store = Netobj_store.Store
module Stub = Netobj_core.Stub
module Wirerep = Netobj_core.Wirerep
module Net = Netobj_net.Net
module Transport = Netobj_transport.Transport
module Sched = Netobj_sched.Sched
module Rng = Netobj_util.Rng
module P = Netobj_pickle.Pickle
module Workload = Netobj_dgc.Workload
module Obs = Netobj_obs.Obs
module Metrics = Netobj_obs.Metrics
module Trace = Netobj_obs.Trace

(* --- fault schedule ------------------------------------------------------- *)

type fault =
  | Partition of { a : int; b : int; duration : float }
  | Crash of { victim : int; downtime : float }
  | Crash_recover of { victim : int; downtime : float }
  | Disk_fault of { victim : int; fault : Store.fault }
  | Loss_burst of { src : int; dst : int; loss : float; duration : float }
  | Dup_burst of { src : int; dst : int; dup : float; duration : float }
  | Latency_spike of { src : int; dst : int; factor : float; duration : float }
  | Call_storm of { victim : int; callers : int; duration : float }

type event = { at : float; fault : fault }

let pp_disk_fault ppf = function
  | Store.Torn_tail -> Fmt.pf ppf "torn_tail"
  | Store.Lost_suffix -> Fmt.pf ppf "lost_suffix"
  | Store.Slow_fsync d -> Fmt.pf ppf "slow_fsync %.2fs" d

let pp_fault ppf = function
  | Partition { a; b; duration } ->
      Fmt.pf ppf "partition %d-%d for %.2fs" a b duration
  | Crash { victim; downtime } ->
      Fmt.pf ppf "crash %d for %.2fs" victim downtime
  | Crash_recover { victim; downtime } ->
      Fmt.pf ppf "crash+recover %d for %.2fs" victim downtime
  | Disk_fault { victim; fault } ->
      Fmt.pf ppf "disk fault %a at %d" pp_disk_fault fault victim
  | Loss_burst { src; dst; loss; duration } ->
      Fmt.pf ppf "loss %d->%d p=%.2f for %.2fs" src dst loss duration
  | Dup_burst { src; dst; dup; duration } ->
      Fmt.pf ppf "dup %d->%d p=%.2f for %.2fs" src dst dup duration
  | Latency_spike { src; dst; factor; duration } ->
      Fmt.pf ppf "spike %d->%d x%.1f for %.2fs" src dst factor duration
  | Call_storm { victim; callers; duration } ->
      Fmt.pf ppf "storm ->%d callers=%d for %.2fs" victim callers duration

let pp_event ppf e = Fmt.pf ppf "@%.2f %a" e.at pp_fault e.fault

(* JSON round trip for scripted nemeses, so a fault schedule (e.g. the
   one a model-checker counterexample ran under) can be exported and
   replayed with [run ?schedule]. *)
module Json = Netobj_obs.Json

let fault_to_json = function
  | Partition { a; b; duration } ->
      Json.Obj
        [
          ("kind", Json.Str "partition");
          ("a", Json.Int a);
          ("b", Json.Int b);
          ("duration", Json.Float duration);
        ]
  | Crash { victim; downtime } ->
      Json.Obj
        [
          ("kind", Json.Str "crash");
          ("victim", Json.Int victim);
          ("downtime", Json.Float downtime);
        ]
  | Crash_recover { victim; downtime } ->
      Json.Obj
        [
          ("kind", Json.Str "crash_recover");
          ("victim", Json.Int victim);
          ("downtime", Json.Float downtime);
        ]
  | Disk_fault { victim; fault } ->
      let fault_fields =
        match fault with
        | Store.Torn_tail -> [ ("fault", Json.Str "torn_tail") ]
        | Store.Lost_suffix -> [ ("fault", Json.Str "lost_suffix") ]
        | Store.Slow_fsync d ->
            [ ("fault", Json.Str "slow_fsync"); ("delay", Json.Float d) ]
      in
      Json.Obj
        (("kind", Json.Str "disk_fault") :: ("victim", Json.Int victim)
        :: fault_fields)
  | Loss_burst { src; dst; loss; duration } ->
      Json.Obj
        [
          ("kind", Json.Str "loss_burst");
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("loss", Json.Float loss);
          ("duration", Json.Float duration);
        ]
  | Dup_burst { src; dst; dup; duration } ->
      Json.Obj
        [
          ("kind", Json.Str "dup_burst");
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("dup", Json.Float dup);
          ("duration", Json.Float duration);
        ]
  | Latency_spike { src; dst; factor; duration } ->
      Json.Obj
        [
          ("kind", Json.Str "latency_spike");
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("factor", Json.Float factor);
          ("duration", Json.Float duration);
        ]
  | Call_storm { victim; callers; duration } ->
      Json.Obj
        [
          ("kind", Json.Str "call_storm");
          ("victim", Json.Int victim);
          ("callers", Json.Int callers);
          ("duration", Json.Float duration);
        ]

let event_to_json ev =
  Json.Obj [ ("at", Json.Float ev.at); ("fault", fault_to_json ev.fault) ]

let events_to_json evs = Json.List (List.map event_to_json evs)

let events_of_json j =
  let ( let* ) = Result.bind in
  let num name o =
    match Option.bind (Json.member name o) Json.to_float_opt with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "missing number %S" name)
  in
  let int name o = Result.map int_of_float (num name o) in
  let fault_of_json o =
    match Json.member "kind" o with
    | Some (Json.Str "partition") ->
        let* a = int "a" o in
        let* b = int "b" o in
        let* duration = num "duration" o in
        Ok (Partition { a; b; duration })
    | Some (Json.Str "crash") ->
        let* victim = int "victim" o in
        let* downtime = num "downtime" o in
        Ok (Crash { victim; downtime })
    | Some (Json.Str "crash_recover") ->
        let* victim = int "victim" o in
        let* downtime = num "downtime" o in
        Ok (Crash_recover { victim; downtime })
    | Some (Json.Str "disk_fault") ->
        let* victim = int "victim" o in
        let* fault =
          match Json.member "fault" o with
          | Some (Json.Str "torn_tail") -> Ok Store.Torn_tail
          | Some (Json.Str "lost_suffix") -> Ok Store.Lost_suffix
          | Some (Json.Str "slow_fsync") ->
              let* d = num "delay" o in
              Ok (Store.Slow_fsync d)
          | _ -> Error "unknown disk fault"
        in
        Ok (Disk_fault { victim; fault })
    | Some (Json.Str "loss_burst") ->
        let* src = int "src" o in
        let* dst = int "dst" o in
        let* loss = num "loss" o in
        let* duration = num "duration" o in
        Ok (Loss_burst { src; dst; loss; duration })
    | Some (Json.Str "dup_burst") ->
        let* src = int "src" o in
        let* dst = int "dst" o in
        let* dup = num "dup" o in
        let* duration = num "duration" o in
        Ok (Dup_burst { src; dst; dup; duration })
    | Some (Json.Str "latency_spike") ->
        let* src = int "src" o in
        let* dst = int "dst" o in
        let* factor = num "factor" o in
        let* duration = num "duration" o in
        Ok (Latency_spike { src; dst; factor; duration })
    | Some (Json.Str "call_storm") ->
        let* victim = int "victim" o in
        let* callers = int "callers" o in
        let* duration = num "duration" o in
        Ok (Call_storm { victim; callers; duration })
    | _ -> Error "unknown fault kind"
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest ->
        let* at = num "at" e in
        let* fault =
          match Json.member "fault" e with
          | Some f -> fault_of_json f
          | None -> Error "missing fault"
        in
        go ({ at; fault } :: acc) rest
  in
  match j with Json.List es -> go [] es | _ -> Error "expected a list"

type mix = {
  partitions : int;
  crashes : int;
  crash_recovers : int;
  disk_faults : int;
  loss_bursts : int;
  dup_bursts : int;
  spikes : int;
  storms : int;
}

let default_mix =
  {
    partitions = 3;
    crashes = 2;
    crash_recovers = 0;
    disk_faults = 0;
    loss_bursts = 3;
    dup_bursts = 2;
    spikes = 2;
    storms = 0;
  }

(* The default mix with recovery faults in: crash+recover replaces one
   amnesia crash, plus armed disk faults (consumed by whichever crash
   comes next). *)
let recovery_mix =
  {
    partitions = 2;
    crashes = 1;
    crash_recovers = 2;
    disk_faults = 2;
    loss_bursts = 2;
    dup_bursts = 1;
    spikes = 1;
    storms = 0;
  }

(* The runtime configuration the harness hardens against faults.  The
   oracle depends on these numbers: a registered-but-live client may be
   unreachable for up to [reachability_slack] seconds before the owner's
   lease ((lease_misses + 1) * ping_period + lease_grace = 4s) could
   legitimately evict it, so the schedule generator keeps each pair's
   fault windows shorter than that and separated by a cooldown. *)
let runtime_config ?(backoff = 2.0) ?(backoff_cap = 2.0)
    ?(backoff_jitter = 0.2) ?(durable = false) ?cycle_period ?call_retries
    ?max_inflight ~seed ~spaces () =
  R.config ~seed
    ~edge:(Net.bag_edge ~lo:0.01 ~hi:0.05 ())
    ~gc_period:0.4 ~ping_period:0.5 ~lease_misses:3 ~lease_grace:2.0
    ~call_timeout:3.0 ~dirty_timeout:3.0 ~clean_retry:0.3 ~dirty_retry:0.3
    ~backoff ~backoff_cap ~backoff_jitter ~pin_timeout:12.0 ~durable
    ~fsync_delay:0.02 ~snapshot_period:5.0 ~recover_grace:2.0 ?cycle_period
    ?call_retries ?max_inflight ~nspaces:spaces ()

let max_fault_duration = 2.5

let pair_cooldown = 5.0

let random_schedule ~seed ~spaces ~duration mix =
  let rng = Rng.create seed in
  let bag =
    List.concat
      [
        List.init mix.partitions (fun _ -> `P);
        List.init mix.crashes (fun _ -> `C);
        List.init mix.loss_bursts (fun _ -> `L);
        List.init mix.dup_bursts (fun _ -> `D);
        List.init mix.spikes (fun _ -> `S);
        (* New kinds append after the legacy ones so that mixes without
           them draw the same shuffled bag as before. *)
        List.init mix.crash_recovers (fun _ -> `R);
        List.init mix.disk_faults (fun _ -> `F);
        List.init mix.storms (fun _ -> `O);
      ]
  in
  let bag = Array.of_list bag in
  Rng.shuffle rng bag;
  let hi = Float.max 0.7 (duration -. max_fault_duration) in
  let times =
    Array.init (Array.length bag) (fun _ -> 0.6 +. (Rng.float rng *. (hi -. 0.6)))
  in
  Array.sort compare times;
  (* Reachability bookkeeping: a pair may suffer a new
     connectivity-threatening fault (partition, loss burst, crash of an
     endpoint) only after the previous one's window plus cooldown, so
     cumulative unreachability never outruns the lease. *)
  let pair_busy = Hashtbl.create 16 in
  let space_busy = Hashtbl.create 8 in
  let pkey a b = (min a b, max a b) in
  let pair_free at a b =
    Option.value ~default:neg_infinity (Hashtbl.find_opt pair_busy (pkey a b))
    <= at
  in
  let claim_pair at a b d =
    Hashtbl.replace pair_busy (pkey a b) (at +. d +. pair_cooldown)
  in
  let all_pairs =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None)
          (List.init spaces Fun.id))
      (List.init spaces Fun.id)
  in
  let events = ref [] in
  Array.iteri
    (fun i kind ->
      let at = times.(i) in
      let d = 0.5 +. (Rng.float rng *. (max_fault_duration -. 0.5)) in
      let free_pairs = List.filter (fun (a, b) -> pair_free at a b) all_pairs in
      let directed (a, b) = if Rng.bool rng then (a, b) else (b, a) in
      match kind with
      | `P -> (
          match free_pairs with
          | [] -> ()
          | ps ->
              let a, b = Rng.pick rng ps in
              claim_pair at a b d;
              events := { at; fault = Partition { a; b; duration = d } } :: !events)
      | `C -> (
          let candidates =
            List.filter
              (fun v ->
                Option.value ~default:neg_infinity
                  (Hashtbl.find_opt space_busy v)
                <= at
                && List.for_all
                     (fun u -> u = v || pair_free at u v)
                     (List.init spaces Fun.id))
              (List.init spaces Fun.id)
          in
          match candidates with
          | [] -> ()
          | vs ->
              let v = Rng.pick rng vs in
              Hashtbl.replace space_busy v (at +. d +. pair_cooldown);
              List.iter (fun u -> if u <> v then claim_pair at u v d)
                (List.init spaces Fun.id);
              events := { at; fault = Crash { victim = v; downtime = d } } :: !events)
      | `R -> (
          (* Same reachability accounting as an amnesia crash: the victim
             is unreachable from everyone for the downtime window. *)
          let candidates =
            List.filter
              (fun v ->
                Option.value ~default:neg_infinity
                  (Hashtbl.find_opt space_busy v)
                <= at
                && List.for_all
                     (fun u -> u = v || pair_free at u v)
                     (List.init spaces Fun.id))
              (List.init spaces Fun.id)
          in
          match candidates with
          | [] -> ()
          | vs ->
              let v = Rng.pick rng vs in
              Hashtbl.replace space_busy v (at +. d +. pair_cooldown);
              List.iter (fun u -> if u <> v then claim_pair at u v d)
                (List.init spaces Fun.id);
              events :=
                { at; fault = Crash_recover { victim = v; downtime = d } }
                :: !events)
      | `F ->
          (* Arming a disk fault threatens nobody's reachability; it only
             shapes what the next crash of the victim loses. *)
          let victim = Rng.int rng spaces in
          let fault =
            match Rng.int rng 3 with
            | 0 -> Store.Lost_suffix
            | 1 -> Store.Torn_tail
            | _ -> Store.Slow_fsync (0.02 +. (Rng.float rng *. 0.08))
          in
          events := { at; fault = Disk_fault { victim; fault } } :: !events
      | `L -> (
          match free_pairs with
          | [] -> ()
          | ps ->
              let a, b = Rng.pick rng ps in
              claim_pair at a b d;
              let src, dst = directed (a, b) in
              let loss = 0.5 +. (Rng.float rng *. 0.4) in
              events := { at; fault = Loss_burst { src; dst; loss; duration = d } } :: !events)
      | `D ->
          let src, dst = directed (Rng.pick rng all_pairs) in
          let dup = 0.3 +. (Rng.float rng *. 0.5) in
          events := { at; fault = Dup_burst { src; dst; dup; duration = d } } :: !events
      | `S ->
          let src, dst = directed (Rng.pick rng all_pairs) in
          let factor = 2.0 +. (Rng.float rng *. 6.0) in
          events :=
            { at; fault = Latency_spike { src; dst; factor; duration = d } } :: !events
      | `O ->
          (* A storm threatens nobody's reachability — the victim stays
             up, just busy shedding — so no pair/space claims. *)
          let victim = Rng.int rng spaces in
          let callers = 8 + Rng.int rng 25 in
          events :=
            { at; fault = Call_storm { victim; callers; duration = d } }
            :: !events)
    bag;
  List.sort (fun e1 e2 -> compare e1.at e2.at) !events

(* --- configuration --------------------------------------------------------- *)

type cfg = {
  seed : int64;
  spaces : int;
  duration : float;
  objects : int;  (** published counters per space *)
  events : int;  (** churn operations per mutator *)
  cycles : int;  (** cross-space reference cycles minted per space *)
  mix : mix;
  drain_limit : float;
  backoff : float;
  backoff_cap : float;
  backoff_jitter : float;
}

let default =
  {
    seed = 1L;
    spaces = 3;
    duration = 20.0;
    objects = 2;
    events = 40;
    cycles = 0;
    mix = default_mix;
    drain_limit = 60.0;
    backoff = 2.0;
    backoff_cap = 2.0;
    backoff_jitter = 0.2;
  }

(* --- report ----------------------------------------------------------------- *)

type report = {
  r_seed : int64;
  r_spaces : int;
  r_end_time : float;
  r_faults : (string * int) list;
  r_ops_ok : int;
  r_ops_timeout : int;
  r_ops_error : int;
  r_orphans : int;
  r_retries : int;
  r_epoch_rejections : int;
  r_evictions : int;
  r_safety : string list;
  r_liveness : string list;
  r_drain_time : float option;
}

let survived r = r.r_safety = [] && r.r_liveness = []

let pp_report ppf r =
  Fmt.pf ppf "chaos seed=%Ld spaces=%d end=%.2f@." r.r_seed r.r_spaces
    r.r_end_time;
  Fmt.pf ppf "faults:%a@."
    (fun ppf fs ->
      if fs = [] then Fmt.pf ppf " none"
      else List.iter (fun (k, n) -> Fmt.pf ppf " %s=%d" k n) fs)
    r.r_faults;
  Fmt.pf ppf "ops: ok=%d timeout=%d error=%d orphans=%d@." r.r_ops_ok
    r.r_ops_timeout r.r_ops_error r.r_orphans;
  Fmt.pf ppf "protocol: retries=%d epoch_rejections=%d evictions=%d@."
    r.r_retries r.r_epoch_rejections r.r_evictions;
  (match r.r_drain_time with
  | Some t -> Fmt.pf ppf "drain: converged in %.2fs@." t
  | None -> Fmt.pf ppf "drain: DID NOT CONVERGE@.");
  List.iter (fun v -> Fmt.pf ppf "SAFETY: %s@." v) r.r_safety;
  List.iter (fun v -> Fmt.pf ppf "LIVENESS: %s@." v) r.r_liveness;
  Fmt.pf ppf "result: %s" (if survived r then "SURVIVED" else "FAILED")

(* --- harness state ---------------------------------------------------------- *)

(* Ground truth for the safety oracle: every object minted through a
   factory, who owns it (and in which incarnation), and which clients
   currently hold a usable reference (and in which of {e their}
   incarnations).  A holder whose space restarted no longer counts — its
   heap died with the old incarnation. *)
type orphan_rec = {
  o_wr : Wirerep.t;
  o_owner : int;
  o_mint_epoch : int;
  mutable o_holders : (int * int) list;  (* client space, client epoch *)
  mutable o_flagged : bool;
}

type ctx = {
  rt : R.t;
  tr : Transport.t;
  sched : Sched.t;
  cfg : cfg;
  storms_armed : bool;
  stop : bool ref;
  mutable mutators_done : int;
  mutable ops_ok : int;
  mutable ops_timeout : int;
  mutable ops_error : int;
  mutable orphans_minted : int;
  fault_counts : (string, int ref) Hashtbl.t;
  mutable violations : string list;  (* newest first *)
  mutable orphans : orphan_rec list;
}

let bump ctx k =
  (match Hashtbl.find_opt ctx.fault_counts k with
  | Some r -> incr r
  | None -> Hashtbl.add ctx.fault_counts k (ref 1));
  Metrics.incr (Metrics.counter Metrics.global ("chaos." ^ k))

let violate ctx fmt =
  Fmt.kstr
    (fun s ->
      ctx.violations <- s :: ctx.violations;
      bump ctx "violations";
      if Obs.on () then
        Trace.instant (Obs.trace ()) ~cat:"chaos" ~space:0
          ~args:[ ("what", Trace.S s) ]
          "violation")
    fmt

(* --- shared interface -------------------------------------------------------- *)

let m_poke = Stub.declare "poke" P.int P.int

let m_make = Stub.declare "make" P.unit R.handle_codec

let counter_meths () =
  let v = ref 0 in
  [
    Stub.implement m_poke (fun _ n ->
        v := !v + n;
        !v);
  ]

(* The factory mints an object and releases its own root {e before} the
   reply is encoded: from that instant the only thing keeping the object
   alive is the reply's transient dirty pin, until the client's dirty
   call lands and its copy_ack releases the pin.  This is the narrowest
   transfer window the protocol protects, run deliberately under fault
   injection. *)
let factory_meths () =
  [
    Stub.implement m_make (fun sp () ->
        let h = R.allocate ~tag:"counter" sp ~meths:(counter_meths ()) in
        R.release sp h;
        h);
  ]

let counter_name s i = Printf.sprintf "c%d.%d" s i

let factory_name s = Printf.sprintf "f%d" s

(* The storm target: a method that holds its serve fiber for a while, so
   a herd of concurrent callers genuinely overlaps at the owner and the
   inflight admission gate has something to shed.  An instant method
   would finish each serve before the next delivery fiber runs and never
   overlap. *)
let m_slow = Stub.declare "slow" P.int P.int

let slow_meths sched () =
  [
    Stub.implement m_slow (fun _ n ->
        Sched.sleep sched 0.05;
        n);
  ]

let slow_name s = Printf.sprintf "slow%d" s

(* --- cycle workload ----------------------------------------------------------- *)

(* Nodes are linkable objects for the cycle-churn workload: [set_peer]
   stores the argument in a slot of the node itself, so two nodes on
   different spaces that point at each other form exactly the
   cross-space cycle the listing collector leaks and the trial-deletion
   detector exists to reclaim. *)
let m_set_peer = Stub.declare "set_peer" R.handle_codec P.unit

let m_make_node = Stub.declare "make_node" P.unit R.handle_codec

let node_make sp =
  let rec node =
    lazy
      (R.allocate ~tag:"node" sp
         ~meths:
           [
             Stub.implement m_set_peer (fun sp' h ->
                 R.link sp' ~parent:(Lazy.force node) ~child:h);
           ])
  in
  Lazy.force node

(* Behaviour re-attached to nodes that crossed a durable recovery: the
   self-handle cannot be recovered into the closure, so [set_peer]
   degrades to releasing the argument — the node's {e existing} links
   were already restored from the WAL, which is what the cycle workload
   relies on. *)
let recovered_node_meths () =
  [ Stub.implement m_set_peer (fun sp h -> R.release sp h) ]

(* Like the orphan factory: the mint's own root is released before the
   reply is encoded, so the transfer rides the transient pin alone. *)
let node_factory_meths () =
  [
    Stub.implement m_make_node (fun sp () ->
        let h = node_make sp in
        R.release sp h;
        h);
  ]

let node_factory_name s = Printf.sprintf "nf%d" s

(* Allocations are tagged with their method-suite factory so a durable
   recovery can re-attach behaviour to the recovered table entries; the
   counters' payload (the int) restarts at zero, which the harness never
   observes. *)
let setup ctx =
  R.register_factory ctx.rt "counter" counter_meths;
  R.register_factory ctx.rt "chaos-factory" factory_meths;
  for s = 0 to ctx.cfg.spaces - 1 do
    let sp = R.space ctx.rt s in
    for i = 0 to ctx.cfg.objects - 1 do
      R.publish sp (counter_name s i)
        (R.allocate ~tag:"counter" sp ~meths:(counter_meths ()))
    done;
    R.publish sp (factory_name s)
      (R.allocate ~tag:"chaos-factory" sp ~meths:(factory_meths ()))
  done;
  (* Storm targets are strictly additive: without storms in the mix (or
     a scripted schedule) nothing extra is published and legacy seeds
     replay byte-identically. *)
  if ctx.storms_armed then begin
    R.register_factory ctx.rt "chaos-slow" (slow_meths ctx.sched);
    for s = 0 to ctx.cfg.spaces - 1 do
      let sp = R.space ctx.rt s in
      R.publish sp (slow_name s)
        (R.allocate ~tag:"chaos-slow" sp ~meths:(slow_meths ctx.sched ()))
    done
  end;
  (* The cycle workload is strictly additive: with [cycles = 0] no node
     factory exists, no cycler runs and no extra rng is drawn, so legacy
     seeds replay byte-identically. *)
  if ctx.cfg.cycles > 0 then begin
    R.register_factory ctx.rt "node" recovered_node_meths;
    R.register_factory ctx.rt "chaos-node-factory" node_factory_meths;
    for s = 0 to ctx.cfg.spaces - 1 do
      let sp = R.space ctx.rt s in
      R.publish sp (node_factory_name s)
        (R.allocate ~tag:"chaos-node-factory" sp ~meths:(node_factory_meths ()))
    done
  end

(* --- nemesis ----------------------------------------------------------------- *)

(* A recorded holder (client space, epoch-at-acquisition) still counts
   if the client is up and its continuity floor reaches back to that
   epoch: an amnesia restart raises the floor past it (the heap died),
   but a durable recovery keeps the floor, so recovered roots remain
   binding ground truth. *)
let live_holders ctx o =
  List.filter
    (fun (c, e) ->
      (not (Transport.is_crashed ctx.tr c)) && R.cont (R.space ctx.rt c) <= e)
    o.o_holders

let apply_fault ctx ev =
  let sched = ctx.sched in
  if Obs.on () then
    Trace.instant (Obs.trace ()) ~cat:"chaos" ~space:0
      ~args:[ ("fault", Trace.S (Fmt.str "%a" pp_fault ev.fault)) ]
      "chaos_fault";
  match ev.fault with
  | Partition { a; b; duration } ->
      if not (Transport.partitioned ctx.tr a b) then begin
        Transport.set_partitioned ctx.tr a b true;
        bump ctx "partitions";
        Sched.spawn sched ~name:(Printf.sprintf "heal-%d-%d" a b) (fun () ->
            Sched.sleep sched duration;
            if Transport.partitioned ctx.tr a b then begin
              Transport.set_partitioned ctx.tr a b false;
              bump ctx "heals"
            end)
      end
  | Crash { victim; downtime } ->
      if not (Transport.is_crashed ctx.tr victim) then begin
        R.crash ctx.rt victim;
        bump ctx "crashes";
        Sched.spawn sched ~name:(Printf.sprintf "restart-%d" victim) (fun () ->
            Sched.sleep sched downtime;
            if Transport.is_crashed ctx.tr victim then begin
              R.restart ctx.rt victim;
              bump ctx "restarts"
            end)
      end
  | Crash_recover { victim; downtime } ->
      if
        (not (Transport.is_crashed ctx.tr victim))
        && R.durable (R.space ctx.rt victim)
      then begin
        R.crash ctx.rt victim;
        bump ctx "crash_recovers";
        Sched.spawn sched ~name:(Printf.sprintf "recover-%d" victim) (fun () ->
            Sched.sleep sched downtime;
            if Transport.is_crashed ctx.tr victim then begin
              R.recover ctx.rt victim;
              bump ctx "recoveries";
              (* Survival oracle: everything reachable from a live root
                 at the moment of the crash must still be resident after
                 recovery — the owner's commit-before-externalize barrier
                 guarantees a held reference implies a durable export. *)
              let osp = R.space ctx.rt victim in
              List.iter
                (fun o ->
                  if
                    o.o_owner = victim && (not o.o_flagged)
                    && R.cont osp <= o.o_mint_epoch
                    && live_holders ctx o <> []
                  then begin
                    bump ctx "survival_checks";
                    if not (R.resident osp o.o_wr) then begin
                      o.o_flagged <- true;
                      violate ctx
                        "survival: %d.%d held but lost across recovery of %d"
                        o.o_wr.Wirerep.space o.o_wr.Wirerep.index victim
                    end
                  end)
                ctx.orphans
            end)
      end
  | Disk_fault { victim; fault } ->
      if R.durable (R.space ctx.rt victim) then begin
        R.set_disk_fault ctx.rt victim (Some fault);
        bump ctx "disk_faults"
      end
  | Loss_burst { src; dst; loss; duration } ->
      Transport.set_burst ctx.tr ~src ~dst ~loss
        ~until:(Sched.now sched +. duration)
        ();
      bump ctx "loss_bursts"
  | Dup_burst { src; dst; dup; duration } ->
      Transport.set_burst ctx.tr ~src ~dst ~dup
        ~until:(Sched.now sched +. duration)
        ();
      bump ctx "dup_bursts"
  | Latency_spike { src; dst; factor; duration } ->
      Transport.set_latency_spike ctx.tr ~src ~dst ~factor
        ~until:(Sched.now sched +. duration);
      bump ctx "latency_spikes"
  | Call_storm { victim; callers; duration } ->
      (* Overload, not connectivity: a herd of short-lived callers hammers
         one of the victim's published counters in a tight loop, driving
         its inflight gate into [Busy] shedding while the ordinary
         mutators keep running.  Callers originate round-robin at the
         other spaces, tolerate every failure, and release what they
         looked up when the window closes. *)
      if not (Transport.is_crashed ctx.tr victim) then begin
        bump ctx "storms";
        let until = Sched.now sched +. duration in
        for i = 0 to callers - 1 do
          let s =
            (victim + 1 + (i mod (ctx.cfg.spaces - 1))) mod ctx.cfg.spaces
          in
          R.spawn ctx.rt
            ~name:(Printf.sprintf "storm-%d-%d" victim i)
            (fun () ->
              let sp = R.space ctx.rt s in
              if not (Transport.is_crashed ctx.tr s) then
                match R.lookup sp ~at:victim (slow_name victim) with
                | h ->
                    let rec hammer () =
                      if
                        (not !(ctx.stop))
                        && Sched.now sched < until
                        && not (Transport.is_crashed ctx.tr s)
                      then begin
                        (try ignore (Stub.call sp h m_slow 1) with
                        | R.Timeout _ | R.Remote_error _ -> ());
                        hammer ()
                      end
                    in
                    hammer ();
                    (try R.release sp h with _ -> ())
                | exception (R.Timeout _ | R.Remote_error _) -> ())
        done
      end

let nemesis ctx schedule () =
  List.iter
    (fun ev ->
      if not !(ctx.stop) then begin
        let now = Sched.now ctx.sched in
        if ev.at > now then Sched.sleep ctx.sched (ev.at -. now);
        if not !(ctx.stop) then apply_fault ctx ev
      end)
    schedule

(* --- mutators ---------------------------------------------------------------- *)

type item = {
  ih : R.handle;
  iowner : int;
  imint : int;  (* owner epoch when acquired *)
  ihold : int;  (* our own epoch when acquired *)
  irec : orphan_rec option;
}

let remove_holder it s =
  match it.irec with
  | None -> ()
  | Some o ->
      let rec rm = function
        | [] -> []
        | (c, e) :: rest when c = s && e = it.ihold -> rest
        | h :: rest -> h :: rm rest
      in
      o.o_holders <- rm o.o_holders

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Classify a failed operation on a held reference.  Timeouts are always
   legitimate (crash, partition, loss).  An overload shed ([Busy] after
   retry exhaustion) says nothing about the object's existence — the
   owner rejected the call before even decoding the target — so it
   counts with the timeouts.  Any other [Remote_error] is legitimate
   only if one of the incarnations involved moved: if both the caller and
   the owner are up and in the same epochs as when the reference was
   acquired, the object cannot have disappeared — that is the safety
   property under test. *)
let classify_error ctx s it msg =
  if contains_sub msg "shed by busy owner" then begin
    ctx.ops_timeout <- ctx.ops_timeout + 1;
    bump ctx "sheds"
  end
  else begin
  ctx.ops_error <- ctx.ops_error + 1;
  bump ctx "ops_error";
  match it with
  | None -> ()
  | Some it ->
      let sp = R.space ctx.rt s in
      let osp = R.space ctx.rt it.iowner in
      if
        (not (Transport.is_crashed ctx.tr s))
        && R.cont sp <= it.ihold
        && (not (Transport.is_crashed ctx.tr it.iowner))
        && R.cont osp <= it.imint
      then
        let wr = R.wirerep it.ih in
        violate ctx
          "space %d: held object %d.%d vanished with owner %d alive (epoch \
           %d): %s"
          s wr.Wirerep.space wr.Wirerep.index it.iowner it.imint msg
  end

let mutator ctx s ops () =
  let sp = R.space ctx.rt s in
  let rng =
    Rng.create (Int64.add ctx.cfg.seed (Int64.of_int ((s * 977) + 0x51ed)))
  in
  let held = ref [] in
  let my_epoch = ref (R.epoch sp) in
  let sync_epoch () =
    let e = R.epoch sp in
    if e <> !my_epoch then begin
      (* Our incarnation moved under us.  An amnesia restart raised the
         continuity floor past our epoch: the old heap died, forget the
         handles.  A durable recovery kept the floor: the roots were
         recovered with the image, so keep holding (and eventually
         releasing) them. *)
      if R.cont sp > !my_epoch then begin
        List.iter (fun it -> remove_holder it s) !held;
        held := []
      end;
      my_epoch := e
    end
  in
  let ok () =
    ctx.ops_ok <- ctx.ops_ok + 1;
    bump ctx "ops_ok"
  in
  let timeout () =
    ctx.ops_timeout <- ctx.ops_timeout + 1;
    bump ctx "ops_timeout"
  in
  let release_item it =
    remove_holder it s;
    R.release sp it.ih
  in
  let other_space () =
    let r = Rng.int rng (ctx.cfg.spaces - 1) in
    if r >= s then r + 1 else r
  in
  let import () =
    let t = other_space () in
    if not (Transport.is_crashed ctx.tr t) then begin
      let osp = R.space ctx.rt t in
      let epoch_before = R.epoch osp in
      let mint_orphan = Rng.int rng 2 = 0 in
      let acquire () =
        if mint_orphan then begin
          let f = R.lookup sp ~at:t (factory_name t) in
          let res =
            try Ok (Stub.call sp f m_make ()) with e -> Error e
          in
          (try R.release sp f with _ -> ());
          match res with Ok h -> h | Error e -> raise e
        end
        else R.lookup sp ~at:t (counter_name t (Rng.int rng ctx.cfg.objects))
      in
      match acquire () with
      | h ->
          (* Record ground truth only if the owner's incarnation was
             stable across the acquisition — otherwise the reference may
             already be dead, and wirerep indices of the new incarnation
             alias the old one's. *)
          if R.epoch osp = epoch_before && R.resident sp (R.wirerep h) then begin
            let irec =
              if mint_orphan then begin
                ctx.orphans_minted <- ctx.orphans_minted + 1;
                bump ctx "orphans";
                let o =
                  {
                    o_wr = R.wirerep h;
                    o_owner = t;
                    o_mint_epoch = epoch_before;
                    o_holders = [ (s, !my_epoch) ];
                    o_flagged = false;
                  }
                in
                ctx.orphans <- o :: ctx.orphans;
                Some o
              end
              else None
            in
            held :=
              { ih = h; iowner = t; imint = epoch_before; ihold = !my_epoch;
                irec }
              :: !held;
            ok ()
          end
          else (try R.release sp h with _ -> ())
      | exception R.Timeout _ -> timeout ()
      | exception R.Remote_error msg -> classify_error ctx s None msg
    end
  in
  let poke () =
    match !held with
    | [] -> ()
    | items -> (
        let it = List.nth items (Rng.int rng (List.length items)) in
        match Stub.call sp it.ih m_poke 1 with
        | _ -> ok ()
        | exception R.Timeout _ -> timeout ()
        | exception R.Remote_error msg ->
            classify_error ctx s (Some it) msg;
            (* Whatever the reason, the reference is unusable: drop it so
               the heap can converge. *)
            sync_epoch ();
            if List.memq it !held then begin
              held := List.filter (fun x -> x != it) !held;
              try release_item it with _ -> ()
            end)
  in
  let drop () =
    match !held with
    | [] -> ()
    | items ->
        let it = List.nth items (Rng.int rng (List.length items)) in
        held := List.filter (fun x -> x != it) !held;
        (try release_item it with _ -> ())
  in
  (* Pace the stream over the whole chaos window (the generator emits
     fewer ops than [events] when a draw has no eligible source), so the
     late faults still hit live traffic. *)
  let op_gap = ctx.cfg.duration /. float_of_int (max 1 (List.length ops)) in
  List.iter
    (fun op ->
      if not !(ctx.stop) then begin
        sync_epoch ();
        if not (Transport.is_crashed ctx.tr s) then
          (match op with
          | Workload.Send (0, _) -> import ()
          | Workload.Send (_, _) -> poke ()
          | Workload.Drop _ -> drop ()
          | Workload.Steps n ->
              Sched.sleep ctx.sched (0.01 *. float_of_int n));
        Sched.sleep ctx.sched op_gap
      end)
    ops;
  (* Teardown: release everything we still hold so the system can drain
     to the empty ground truth. *)
  sync_epoch ();
  if not (Transport.is_crashed ctx.tr s) then
    List.iter (fun it -> try release_item it with _ -> ()) !held;
  held := [];
  ctx.mutators_done <- ctx.mutators_done + 1

(* --- cycle churn --------------------------------------------------------------- *)

(* One cycler per space: mint [cfg.cycles] two-node cross-space cycles
   over the chaos window, dropping half of them immediately (garbage the
   moment the roots go — the detector demon must reclaim them {e during}
   the faults) and holding the rest until teardown (the continuous
   safety checker must see them survive every trial while rooted).  Both
   halves are recorded as ground-truth orphans, so the drain oracle's
   "unreachable but not reclaimed" clause demands that every isolated
   cycle is eventually reclaimed — the liveness half of the detector's
   contract. *)
let cycler ctx s n () =
  let sp = R.space ctx.rt s in
  let rng =
    Rng.create (Int64.add ctx.cfg.seed (Int64.of_int ((s * 613) + 0x2c97)))
  in
  let held = ref [] in
  let my_epoch = ref (R.epoch sp) in
  let sync_epoch () =
    let e = R.epoch sp in
    if e <> !my_epoch then begin
      if R.cont sp > !my_epoch then begin
        List.iter (fun it -> remove_holder it s) !held;
        held := []
      end;
      my_epoch := e
    end
  in
  let release_item it =
    remove_holder it s;
    try R.release sp it.ih with _ -> ()
  in
  let record h owner mint_epoch =
    ctx.orphans_minted <- ctx.orphans_minted + 1;
    let o =
      {
        o_wr = R.wirerep h;
        o_owner = owner;
        o_mint_epoch = mint_epoch;
        o_holders = [ (s, !my_epoch) ];
        o_flagged = false;
      }
    in
    ctx.orphans <- o :: ctx.orphans;
    { ih = h; iowner = owner; imint = mint_epoch; ihold = !my_epoch;
      irec = Some o }
  in
  let mint () =
    let t =
      let r = Rng.int rng (ctx.cfg.spaces - 1) in
      if r >= s then r + 1 else r
    in
    if not (Transport.is_crashed ctx.tr t) then begin
      let osp = R.space ctx.rt t in
      let t_epoch = R.epoch osp in
      let acquire () =
        let f = R.lookup sp ~at:t (node_factory_name t) in
        let res = try Ok (Stub.call sp f m_make_node ()) with e -> Error e in
        (try R.release sp f with _ -> ());
        match res with Ok h -> h | Error e -> raise e
      in
      match acquire () with
      | nr ->
          if R.epoch osp = t_epoch && R.resident sp (R.wirerep nr) then begin
            let nl = node_make sp in
            let items = [ record nl s !my_epoch; record nr t t_epoch ] in
            (* forward edge locally, back edge through the wire *)
            R.link sp ~parent:nl ~child:nr;
            (try Stub.call sp nr m_set_peer nl
             with R.Timeout _ | R.Remote_error _ -> ());
            bump ctx "cycles";
            sync_epoch ();
            if Rng.int rng 2 = 0 then
              (* instant garbage: only the detector can reclaim it *)
              List.iter release_item items
            else held := items @ !held
          end
          else (try R.release sp nr with _ -> ())
      | exception R.Timeout _ -> ()
      | exception R.Remote_error _ -> ()
    end
  in
  let gap = ctx.cfg.duration /. float_of_int (max 1 n) in
  for _ = 1 to n do
    if not !(ctx.stop) then begin
      sync_epoch ();
      if not (Transport.is_crashed ctx.tr s) then mint ();
      Sched.sleep ctx.sched gap
    end
  done;
  sync_epoch ();
  if not (Transport.is_crashed ctx.tr s) then
    List.iter (fun it -> try release_item it with _ -> ()) !held;
  held := [];
  ctx.mutators_done <- ctx.mutators_done + 1

(* --- safety checker ----------------------------------------------------------- *)

(* The direct safety oracle: while an object's owner carries the state
   of the incarnation that minted it (same epoch, or a later one whose
   continuity floor reaches back — i.e. durable recoveries only), and
   some client incarnation still holds it, the owner must not have
   reclaimed it.  Runs continuously, not just at quiescence. *)
let check_residency ctx =
  List.iter
    (fun o ->
      if not o.o_flagged then begin
        let osp = R.space ctx.rt o.o_owner in
        if
          (not (Transport.is_crashed ctx.tr o.o_owner))
          && R.cont osp <= o.o_mint_epoch
          && live_holders ctx o <> []
          && not (R.resident osp o.o_wr)
        then begin
          o.o_flagged <- true;
          violate ctx "premature collection: %d.%d held but reclaimed at %.2f"
            o.o_wr.Wirerep.space o.o_wr.Wirerep.index (Sched.now ctx.sched)
        end
      end)
    ctx.orphans

let checker ctx () =
  let rec loop () =
    if not !(ctx.stop) then begin
      Sched.sleep ctx.sched 0.25;
      check_residency ctx;
      loop ()
    end
  in
  loop ()

(* --- drain oracle -------------------------------------------------------------- *)

(* Convergence to ground truth after the faults stop and every mutator
   released: no protocol invariant violated, no surrogate anywhere (so no
   dirty entry anywhere), every minted object reclaimed by its owner.
   Returns [] when converged. *)
let drain_oracle ctx =
  let problems = ref [] in
  let add fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  List.iter (fun p -> add "%s" p) (R.check_consistency ctx.rt);
  List.iter
    (fun sp ->
      let n = R.surrogate_count sp in
      if n > 0 then begin
        add "space %d: %d surrogates not drained" (R.space_id sp) n;
        List.iter (fun s -> add "  %s" s) (R.surrogate_summary sp)
      end)
    (R.spaces ctx.rt);
  List.iter
    (fun o ->
      let osp = R.space ctx.rt o.o_owner in
      if
        R.cont osp <= o.o_mint_epoch
        && live_holders ctx o = []
        && R.resident osp o.o_wr
      then
        add "orphan %d.%d unreachable but not reclaimed" o.o_wr.Wirerep.space
          o.o_wr.Wirerep.index)
    ctx.orphans;
  List.rev !problems

(* --- the run ------------------------------------------------------------------- *)

let run ?schedule cfg =
  if cfg.spaces < 2 then invalid_arg "Chaos.run: need at least two spaces";
  (* Spaces are durable exactly when the run can exercise recovery —
     either through the mix or through a scripted schedule. *)
  let durable =
    cfg.mix.crash_recovers > 0
    || cfg.mix.disk_faults > 0
    ||
    match schedule with
    | None -> false
    | Some s ->
        List.exists
          (fun ev ->
            match ev.fault with
            | Crash_recover _ | Disk_fault _ -> true
            | _ -> false)
          s
  in
  (* With storms in play the run arms the call-reliability plane — a
     bounded inflight gate small enough for a herd to saturate, and
     retries so the shed mutator traffic recovers.  Strictly additive:
     at [storms = 0] the config is identical to builds without the
     storm fault and legacy seeds replay byte-identically. *)
  let storms_armed =
    cfg.mix.storms > 0
    ||
    match schedule with
    | None -> false
    | Some s ->
        List.exists
          (fun ev -> match ev.fault with Call_storm _ -> true | _ -> false)
          s
  in
  let rcfg =
    runtime_config ~backoff:cfg.backoff ~backoff_cap:cfg.backoff_cap
      ~backoff_jitter:cfg.backoff_jitter ~durable
      ?cycle_period:(if cfg.cycles > 0 then Some 0.7 else None)
      ?call_retries:(if storms_armed then Some 2 else None)
      ?max_inflight:(if storms_armed then Some 8 else None)
      ~seed:cfg.seed ~spaces:cfg.spaces ()
  in
  let rt = R.create rcfg in
  let ctx =
    {
      rt;
      tr = R.transport rt;
      sched = R.sched rt;
      cfg;
      storms_armed;
      stop = ref false;
      mutators_done = 0;
      ops_ok = 0;
      ops_timeout = 0;
      ops_error = 0;
      orphans_minted = 0;
      fault_counts = Hashtbl.create 16;
      violations = [];
      orphans = [];
    }
  in
  setup ctx;
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
        random_schedule
          ~seed:(Int64.logxor cfg.seed 0x6b8b4567L)
          ~spaces:cfg.spaces ~duration:cfg.duration cfg.mix
  in
  for s = 0 to cfg.spaces - 1 do
    let ops =
      Workload.churn_ops ~procs:2 ~events:cfg.events
        ~seed:(Int64.add cfg.seed (Int64.of_int ((s * 131) + 7)))
        ()
    in
    R.spawn rt ~name:(Printf.sprintf "mutator-%d" s) (mutator ctx s ops)
  done;
  if cfg.cycles > 0 then
    for s = 0 to cfg.spaces - 1 do
      R.spawn rt
        ~name:(Printf.sprintf "cycler-%d" s)
        (cycler ctx s cfg.cycles)
    done;
  R.spawn rt ~name:"nemesis" (nemesis ctx schedule);
  R.spawn rt ~name:"checker" (checker ctx);
  (* Chaos phase: mutators churn references while the nemesis injects
     faults, on a bounded clock (the periodic demons never go idle). *)
  ignore (R.run ~until:cfg.duration rt);
  ctx.stop := true;
  (* Quiesce: heal every partition, restart whoever is still down, then
     let the mutators notice the stop flag, finish their in-flight
     operation (bounded by the call timeout) and release what they hold. *)
  Transport.heal_all ctx.tr;
  for i = 0 to cfg.spaces - 1 do
    if Transport.is_crashed ctx.tr i then
      if durable then begin
        R.recover rt i;
        bump ctx "recoveries"
      end
      else begin
        R.restart rt i;
        bump ctx "restarts"
      end
  done;
  let quiesce_start = Sched.now ctx.sched in
  let mutator_deadline = quiesce_start +. 15.0 in
  let workers =
    if cfg.cycles > 0 then 2 * cfg.spaces else cfg.spaces
  in
  while
    ctx.mutators_done < workers && Sched.now ctx.sched < mutator_deadline
  do
    ignore (R.run ~until:(Sched.now ctx.sched +. 1.0) rt)
  done;
  if ctx.mutators_done < workers then
    violate ctx "%d mutators wedged after quiesce"
      (workers - ctx.mutators_done);
  (* Drain: drive the clock until cleans, retries, pings and epoch
     discovery settle the whole system back to ground truth.  Drain time
     is measured from the heal, so it includes the release traffic of the
     winding-down mutators. *)
  let drain_deadline = quiesce_start +. cfg.drain_limit in
  let remaining = ref (drain_oracle ctx) in
  while !remaining <> [] && Sched.now ctx.sched < drain_deadline do
    ignore (R.run ~until:(Sched.now ctx.sched +. 2.0) rt);
    remaining := drain_oracle ctx
  done;
  let drain_time =
    if !remaining = [] then Some (Sched.now ctx.sched -. quiesce_start)
    else None
  in
  let retries, rejections, evictions =
    List.fold_left
      (fun (r, j, e) sp ->
        let st = R.gc_stats sp in
        ( r + st.R.retries,
          j + st.R.epoch_rejections,
          e + st.R.evictions ))
      (0, 0, 0) (R.spaces rt)
  in
  let faults =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt ctx.fault_counts k with
        | Some r -> Some (k, !r)
        | None -> None)
      [
        "partitions";
        "heals";
        "crashes";
        "restarts";
        "crash_recovers";
        "recoveries";
        "disk_faults";
        "survival_checks";
        "loss_bursts";
        "dup_bursts";
        "latency_spikes";
        "storms";
        "sheds";
        "cycles";
      ]
  in
  {
    r_seed = cfg.seed;
    r_spaces = cfg.spaces;
    r_end_time = Sched.now ctx.sched;
    r_faults = faults;
    r_ops_ok = ctx.ops_ok;
    r_ops_timeout = ctx.ops_timeout;
    r_ops_error = ctx.ops_error;
    r_orphans = ctx.orphans_minted;
    r_retries = retries;
    r_epoch_rejections = rejections;
    r_evictions = evictions;
    r_safety = List.rev ctx.violations;
    r_liveness = !remaining;
    r_drain_time = drain_time;
  }
