(** Deterministic chaos harness: nemesis fault injection against the
    full runtime, with safety and liveness oracles.

    A run builds a hardened runtime (periodic GC and ping demons, lease
    grace, retry backoff, transient-pin timeout, epoch-stamped packets),
    populates every space with published counters and an {e orphan
    factory} (a method that mints an object whose only protection during
    transfer is the reply's transient dirty pin — the narrowest window
    the protocol defends), then interleaves three kinds of fibers on the
    virtual clock:

    - {e mutators}, one per space, executing a seeded
      {!Netobj_dgc.Workload.churn_ops} stream mapped onto real imports,
      remote calls, and releases, tolerating timeouts and errors;
    - a {e nemesis} applying a fault schedule: partitions (healed after a
      window), crash + restart, loss and duplication bursts, latency
      spikes;
    - a {e checker} continuously asserting the safety oracle.

    When the schedule ends the harness heals all partitions, restarts
    every crashed space, lets mutators release what they hold, and drives
    the clock until the system drains back to ground truth: no protocol
    invariant violated ({!Netobj_core.Runtime.check_consistency}), no
    surrogate (hence no dirty entry) anywhere, every minted object
    reclaimed by its owner.

    Everything — schedule, workload, network, retry jitter — derives
    from the seed, so a failing run replays exactly.

    {2 Oracles}

    {e Safety} (checked continuously): while an object's owner is up in
    the incarnation that minted it and some client incarnation holds a
    reference, the object must be resident at the owner; and an operation
    on such a reference must never fail with a remote error.  Lease
    eviction cannot legitimately fire because the schedule generator
    keeps every pair's connectivity-fault windows shorter than the lease
    ((misses + 1) × ping period + grace) and separated by a cooldown.

    {e Survival} (checked after each {!fault.Crash_recover}): every
    object whose owner crashed while some live client held a reference
    must still be resident after the owner recovers from its durable
    store — regardless of armed disk faults, because the runtime's
    commit-before-externalize barrier means a reference a peer holds
    implies a durable export record.

    {e Liveness} (checked at quiescence): the drain oracle above, within
    a bounded virtual-time budget.  Under durable mixes the holder
    ground truth is lineage-aware: an amnesia restart invalidates a
    holder record (the heap died), a durable recovery does not (the
    roots were recovered with the image and are still released by the
    mutator's teardown). *)

type fault =
  | Partition of { a : int; b : int; duration : float }
      (** sever both directions between [a] and [b], heal after
          [duration] *)
  | Crash of { victim : int; downtime : float }
      (** crash the space, {!Netobj_core.Runtime.restart} it (fresh
          incarnation with amnesia, bumped epoch) after [downtime] *)
  | Crash_recover of { victim : int; downtime : float }
      (** crash the space, {!Netobj_core.Runtime.recover} it from its
          durable store after [downtime]; applied only when the space is
          durable.  Triggers the survival oracle after the recovery. *)
  | Disk_fault of { victim : int; fault : Netobj_store.Store.fault }
      (** arm a disk fault on the victim's store: shapes what the next
          crash loses (torn tail, lost unsynced suffix) or slows fsync.
          Ignored when the space is not durable. *)
  | Loss_burst of { src : int; dst : int; loss : float; duration : float }
  | Dup_burst of { src : int; dst : int; dup : float; duration : float }
  | Latency_spike of { src : int; dst : int; factor : float; duration : float }
  | Call_storm of { victim : int; callers : int; duration : float }
      (** overload, not connectivity: [callers] extra fibers hammer one
          of the victim's published counters in a tight loop for
          [duration], driving its inflight admission gate
          ([max_inflight]) into [Busy] shedding while the ordinary
          mutators keep running.  When a run's mix or scripted schedule
          contains storms the harness arms the call-reliability plane
          (bounded inflight gate, retries); shed operations count under
          the ["sheds"] fault key and are never safety violations —
          the owner rejects them before decoding the target *)

type event = { at : float; fault : fault }

val pp_fault : fault Fmt.t

val pp_event : event Fmt.t

(** JSON round trip for scripted nemeses: export a fault schedule (e.g.
    from a model-checker counterexample) and feed it back to
    {!run}[ ?schedule]. *)
val events_to_json : event list -> Netobj_obs.Json.t

val events_of_json : Netobj_obs.Json.t -> (event list, string) result

(** How many faults of each kind a random schedule contains.  When
    [crash_recovers] or [disk_faults] is nonzero (or a scripted schedule
    contains those faults), {!run} builds the runtime with durable
    spaces and quiesces still-crashed spaces with
    {!Netobj_core.Runtime.recover} instead of restart. *)
type mix = {
  partitions : int;
  crashes : int;
  crash_recovers : int;
  disk_faults : int;
  loss_bursts : int;
  dup_bursts : int;
  spikes : int;
  storms : int;  (** call storms; nonzero arms the reliability plane *)
}

val default_mix : mix

(** The recovery-heavy mix: crash+recover events plus armed disk faults,
    alongside the usual connectivity churn. *)
val recovery_mix : mix

(** Generate a seeded random schedule over [\[0.6, duration\]].
    Connectivity-threatening faults (partitions, loss bursts, crashes)
    respect per-pair and per-space cooldowns so the lease never
    legitimately evicts a live client; a fault that cannot be placed is
    silently dropped. *)
val random_schedule :
  seed:int64 -> spaces:int -> duration:float -> mix -> event list

type cfg = {
  seed : int64;
  spaces : int;  (** at least 2 *)
  duration : float;  (** chaos phase length, virtual seconds *)
  objects : int;  (** published counters per space *)
  events : int;  (** churn operations per mutator *)
  cycles : int;
      (** cross-space reference cycles minted per space (0 = none).  When
          positive, a per-space cycler churns two-node cross-space cycles
          through the node factories, the runtime's cycle detector demon
          is armed ([cycle_period]), the cycles become ground-truth
          orphans for the drain oracle (every isolated cycle must be
          reclaimed) and mint counts appear under the ["cycles"] fault
          key.  Strictly additive: at 0, runs replay byte-identically to
          builds without the cycle workload. *)
  mix : mix;
  drain_limit : float;  (** post-heal convergence budget *)
  backoff : float;  (** retry backoff multiplier (≥ 1) *)
  backoff_cap : float;
  backoff_jitter : float;
}

(** Three spaces, 20 virtual seconds, the default mix, exponential
    backoff 2× capped at 2 s with 20 % jitter. *)
val default : cfg

type report = {
  r_seed : int64;
  r_spaces : int;
  r_end_time : float;  (** virtual clock at the end of the run *)
  r_faults : (string * int) list;  (** applied faults by kind, sorted *)
  r_ops_ok : int;
  r_ops_timeout : int;
  r_ops_error : int;
  r_orphans : int;  (** objects minted through the factories *)
  r_retries : int;  (** dirty/clean retransmissions, all spaces *)
  r_epoch_rejections : int;
  r_evictions : int;
  r_safety : string list;  (** safety-oracle violations, oldest first *)
  r_liveness : string list;  (** what failed to drain, [] if converged *)
  r_drain_time : float option;
      (** virtual seconds from quiesce to convergence, [None] if the
          drain limit expired first *)
}

val survived : report -> bool

val pp_report : report Fmt.t

(** Run the harness.  [schedule] overrides the seeded random schedule
    (for scripted scenarios); it must respect the same reachability
    constraints as {!random_schedule} or the lease may legitimately evict
    a live client and trip the safety oracle.  The harness also bumps
    [chaos.*] counters in {!Netobj_obs.Metrics.global}. *)
val run : ?schedule:event list -> cfg -> report
