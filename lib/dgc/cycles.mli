(** Pure trial-deletion engine for distributed cycle collection.

    The runtime leaks isolated {e cross-space cycles}: an object is
    reclaimed only when its dirty set drains, and in a cycle every
    member keeps a dirty entry alive at the next, so none ever drains
    ([Runtime.global_collect] is the stop-the-world workaround).  This
    module is the asynchronous alternative: a {e trial deletion} over a
    suspected subgraph, phrased as a pure state machine so it can be
    unit-tested and model-checked without a runtime.

    A {e trial} starts from one suspect node and computes the backward
    closure of everything that could be keeping it alive through dirty
    sets: each {!Cr_quiet} report names the dirty-set members (who are
    then asked about their surrogate) and the local {e ancestors}
    (unreachable local concretes with a slot path to the target, who
    become targets themselves).  When the closure stops growing and
    every report is quiet, the trial re-issues {e every} query — the
    confirm phase — and commits only if all second-round reports are
    byte-identical to the first and no responder changed epoch.

    Safety rests on the {e touch counter} carried in each quiet report:
    a per-wirerep monotone counter the runtime bumps on every root,
    pin, dirty or table mutation.  A reference that migrates between
    two probed spaces in the window between their queries cannot dodge
    both rounds without bumping a counter at whichever space held it
    when that space was queried, so "identical reports" really does
    mean "nothing moved".  Counters are never reset within an epoch
    (reusing a value would re-open the ABA window) and are {e not}
    persisted: an epoch bump aborts in-flight trials, which is the
    moratorium the WAL story needs.

    The engine is conservative everywhere: any {!Cr_live} or
    {!Cr_gone} report, epoch change, report mismatch or oversized
    closure aborts the trial.  Aborts are cheap — detector state is
    soft and the suspect will be re-nominated later. *)

(** A node is a wireRep seen from nowhere in particular: the owning
    space and the object's index there.  (This library cannot depend on
    [Netobj_core.Wirerep]; the runtime converts at the boundary.) *)
type node = { nspace : int; nindex : int }

val pp_node : node Fmt.t

val compare_node : node -> node -> int

(** What a space answers about one target:
    - [Cr_live]: locally reachable from roots/pins (without the
      dirty-keeps-alive clause), or in a transient surrogate state, or
      the space is inside its recovery moratorium — the trial must
      abort;
    - [Cr_gone]: no table entry — someone already collected it; abort;
    - [Cr_quiet]: unreachable here. [touch] is the target's mutation
      counter at this space, [dirty] the dirty-set members (owner side
      only, sorted), [ancestors] the locally-unreachable concretes with
      a slot path to the target (sorted) — they join the closure. *)
type report =
  | Cr_live
  | Cr_gone
  | Cr_quiet of { touch : int; dirty : int list; ancestors : node list }

val pp_report : report Fmt.t

val equal_report : report -> report -> bool

(** A batch of targets to ask one space about.  The runtime turns this
    into a [Cycle_probe] envelope (or answers locally for its own
    space). *)
type query = { q_space : int; q_targets : node list }

type phase = Probing | Confirming

type outcome =
  | Pending  (** queries outstanding *)
  | Garbage of node list
      (** confirm passed: the whole closure is garbage; commit it *)
  | Aborted of string  (** conservative abort; reason for diagnostics *)

type trial

(** [start ?cap suspect] begins a trial.  [cap] (default 64) bounds the
    closure size; larger suspected subgraphs abort rather than flood
    the network.  Returns the initial query (the suspect's owner). *)
val start : ?cap:int -> node -> trial * query list

(** Feed one space's reply into the trial: the responder, its current
    incarnation epoch, and a report per queried target.  Returns
    follow-up queries (closure growth, or the full confirm round when
    probing completes).  Idle after the trial resolves. *)
val deliver :
  trial -> space:int -> epoch:int -> (node * report) list -> query list

val outcome : trial -> outcome

val phase : trial -> phase

(** Every node in the closure so far (sorted). *)
val members : trial -> node list

(** Outstanding (space, target) queries — exposed so a driver can abort
    trials whose replies will never come. *)
val pending : trial -> int

(** Force an abort from outside (epoch bump observed, timeout, peer
    crash).  Idle if the trial already resolved. *)
val abort : trial -> string -> unit

(** Group a garbage closure by owning space, for commit messages. *)
val group_by_space : node list -> (int * node list) list
