(** Workload driver for the algorithm family.

    A workload is a list of application operations over the single shared
    object; the driver interleaves them with the algorithm's own steps,
    gives the owner's collector a chance to reclaim after {e every} step
    (the adversarial schedule that exposes the naive race), records
    message costs and zombie high-water marks, and finally tears
    everything down to judge liveness. *)

type proc = Types.proc

type op =
  | Send of proc * proc
      (** copy from a holder to a destination.  If the source does not
          hold the object yet (its copy may still be in flight), the
          driver first runs steps until it does; the op is skipped if the
          machinery goes idle first. *)
  | Drop of proc  (** the application at [proc] discards the object *)
  | Steps of int  (** run up to [n] machinery steps *)

type outcome = {
  premature_at : int option;
      (** index of the first event after which the object was observed
          collected-while-needed (the safety violation), if any *)
  leaked : bool;
      (** after every holder dropped and the machinery went idle, the
          owner still could not collect (liveness failure) *)
  collected_at_end : bool;
  control : (string * int) list;  (** control messages by kind *)
  total_control : int;
  sends_executed : int;
  max_zombies : int;
  steps : int;  (** machinery steps consumed in total *)
}

(** Run a workload to completion (including final teardown and drain). *)
val run : Algo.view -> op list -> outcome

(** {1 Workload generators}

    All take the process count and return operation lists whose sends
    originate from processes that will hold the object at that point. *)

(** The Figure 1 scenario: owner gives the reference to [p1]; [p1]
    forwards to [p2] and drops; then [p2] drops.  The decrement /
    increment race window of naive counting. *)
val figure1 : op list

(** Owner hands the object down a chain 1 → 2 → … → n-1, each process
    dropping right after forwarding. *)
val chain : procs:int -> op list

(** Owner sends to every other process; all drop. *)
val fanout : procs:int -> op list

(** [k] rounds of: owner sends to 1, 1 drops — stressing resurrection
    (the ccitnil window in Birrell's algorithm). *)
val pingpong : rounds:int -> op list

(** [churn_ops ~procs ~events ~seed ()] generates [events] weighted
    random operations — sends from plausible holders, drops by clients,
    short step bursts — without the trailing drain that {!churn}
    appends.  The weights default to 5/3/2 (send/drop/steps); the same
    stream feeds both the abstract-machine driver here and the
    full-runtime chaos harness's mutators ({!Netobj_chaos}), so the two
    exercise comparable reference churn. *)
val churn_ops :
  ?w_send:int ->
  ?w_drop:int ->
  ?w_steps:int ->
  procs:int ->
  events:int ->
  seed:int64 ->
  unit ->
  op list

(** Random churn: [events] random sends-from-holders and drops, seeded —
    [churn_ops] followed by a 500-step drain. *)
val churn : procs:int -> events:int -> seed:int64 -> op list
