module Rng = Netobj_util.Rng

type proc = Types.proc

type op = Send of proc * proc | Drop of proc | Steps of int

type outcome = {
  premature_at : int option;
  leaked : bool;
  collected_at_end : bool;
  control : (string * int) list;
  total_control : int;
  sends_executed : int;
  max_zombies : int;
  steps : int;
}

type state = {
  view : Algo.view;
  mutable premature_at : int option;
  mutable event : int;
  mutable sends : int;
  mutable max_zombies : int;
  mutable steps : int;
}

let observe st =
  st.event <- st.event + 1;
  st.max_zombies <- max st.max_zombies (st.view.Algo.zombies ());
  (* Adversarial: the owner's collector runs at every opportunity. *)
  st.view.Algo.try_collect ();
  if st.premature_at = None && Algo.premature st.view then
    st.premature_at <- Some st.event

let step_once st =
  let progressed = st.view.Algo.step () in
  if progressed then begin
    st.steps <- st.steps + 1;
    observe st
  end;
  progressed

let rec step_until_idle st budget =
  if budget > 0 && step_once st then step_until_idle st (budget - 1)

let run view ops =
  let st =
    {
      view;
      premature_at = None;
      event = 0;
      sends = 0;
      max_zombies = 0;
      steps = 0;
    }
  in
  let exec = function
    | Send (src, dst) ->
        (* Let in-flight machinery catch up until the source holds. *)
        let rec wait budget =
          if (not (view.Algo.can_send src)) && budget > 0 && step_once st then
            wait (budget - 1)
        in
        wait 100_000;
        if view.Algo.can_send src && src <> dst then begin
          view.Algo.send ~src ~dst;
          st.sends <- st.sends + 1;
          observe st
        end
    | Drop p ->
        (* An application can only discard what it has received: wait for
           the in-flight copy, as Figure 1's p3 discards after receipt. *)
        let rec wait budget =
          if (not (view.Algo.holds p)) && budget > 0 && step_once st then
            wait (budget - 1)
        in
        wait 100_000;
        if view.Algo.holds p then begin
          view.Algo.drop p;
          observe st
        end
    | Steps n ->
        let rec go n = if n > 0 && step_once st then go (n - 1) in
        go n
  in
  List.iter exec ops;
  (* Teardown: every application holder drops and the machinery drains.
     Late deliveries can hand the object back to an application that
     already dropped it, so iterate to a fixed point. *)
  let any_holder () =
    List.exists view.Algo.holds (List.init view.Algo.procs Fun.id)
  in
  let rounds = ref 0 in
  step_until_idle st 1_000_000;
  while any_holder () && !rounds < 20 do
    incr rounds;
    for p = 0 to view.Algo.procs - 1 do
      while view.Algo.holds p do
        view.Algo.drop p;
        observe st
      done
    done;
    step_until_idle st 1_000_000
  done;
  view.Algo.try_collect ();
  if st.premature_at = None && Algo.premature view then
    st.premature_at <- Some st.event;
  let collected = view.Algo.collected () in
  {
    premature_at = st.premature_at;
    leaked = not collected;
    collected_at_end = collected;
    control = view.Algo.control_messages ();
    total_control = Algo.total_control view;
    sends_executed = st.sends;
    max_zombies = st.max_zombies;
    steps = st.steps;
  }

(* --- generators --------------------------------------------------------- *)

(* The owner drops its local root early: the object survives only through
   remote references, as in the paper's figure. *)
let figure1 =
  [
    Send (0, 1);
    Steps 50;
    Drop 0;
    Send (1, 2);
    Drop 1;
    Drop 2;
    Steps 200;
  ]

let chain ~procs =
  let rec go p acc =
    if p >= procs - 1 then List.rev acc
    else go (p + 1) (Drop p :: Send (p, p + 1) :: acc)
  in
  Send (0, 1) :: Steps 50 :: go 1 [ ]

let fanout ~procs =
  List.concat_map (fun p -> [ Send (0, p); Steps 10 ]) (List.init (procs - 1) (fun i -> i + 1))
  @ List.map (fun i -> Drop (i + 1)) (List.init (procs - 1) Fun.id)
  @ [ Steps 500 ]

let pingpong ~rounds =
  List.concat
    (List.init rounds (fun _ -> [ Send (0, 1); Drop 1; Steps 7 ]))
  @ [ Steps 500 ]

let churn_ops ?(w_send = 5) ?(w_drop = 3) ?(w_steps = 2) ~procs ~events ~seed
    () =
  if w_send <= 0 || w_drop < 0 || w_steps < 0 then
    invalid_arg "Workload.churn_ops: weights";
  let total = w_send + w_drop + w_steps in
  let rng = Rng.create seed in
  (* Track who plausibly holds, just to bias sources; the driver re-checks
     with can_send at execution time. *)
  let holders = Array.make procs false in
  holders.(0) <- true;
  let ops = ref [] in
  for _ = 1 to events do
    let holding =
      List.filter (fun p -> holders.(p)) (List.init procs Fun.id)
    in
    let r = Rng.int rng total in
    if r < w_send then begin
      let src = Rng.pick rng holding in
      let dst = Rng.int rng procs in
      if src <> dst then begin
        holders.(dst) <- true;
        ops := Send (src, dst) :: !ops
      end
    end
    else if r < w_send + w_drop then
      match List.filter (fun p -> p <> 0) holding with
      | [] -> ()
      | clients ->
          let p = Rng.pick rng clients in
          holders.(p) <- false;
          ops := Drop p :: !ops
    else ops := Steps (1 + Rng.int rng 5) :: !ops
  done;
  List.rev !ops

let churn ~procs ~events ~seed =
  churn_ops ~procs ~events ~seed () @ [ Steps 500 ]
