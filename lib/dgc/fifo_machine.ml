open Types
module Fqueue = Netobj_util.Fqueue

module Td = Set.Make (struct
  type t = proc * proc * msg_id

  let compare (a1, a2, a3) (b1, b2, b3) =
    match Int.compare a1 b1 with
    | 0 -> ( match Int.compare a2 b2 with 0 -> compare_msg_id a3 b3 | c -> c)
    | c -> c
end)

module Pset = Set.Make (Int)

module Rset = Set.Make (struct
  type t = rref

  let compare = compare_rref
end)

module Pr = Set.Make (struct
  type t = proc * rref

  let compare (a1, a2) (b1, b2) =
    match Int.compare a1 b1 with 0 -> compare_rref a2 b2 | c -> c
end)

module Ppmap = Map.Make (struct
  type t = proc * proc

  let compare (a1, a2) (b1, b2) =
    match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c
end)

module Prmap = Map.Make (struct
  type t = proc * rref

  let compare (a1, a2) (b1, b2) =
    match Int.compare a1 b1 with 0 -> compare_rref a2 b2 | c -> c
end)

module Pmap = Map.Make (Int)

type fstate = FBot | FOk

type call = Dirty_call of rref | Clean_call of rref

type message =
  | Copy of rref * msg_id
  | Copy_ack of rref * msg_id
  | Dirty of rref
  | Dirty_ack of rref
  | Clean of rref

let compare_fmessage a b = Stdlib.compare a b

let compare_call a b = Stdlib.compare (a : call) b

type config = {
  nprocs : int;
  refs : rref list;
  channels : message Fqueue.t Ppmap.t;  (** FIFO queues; absent = empty *)
  calls : call Fqueue.t Pmap.t;  (** merged outgoing call queue *)
  tdirty_t : Td.t Prmap.t;
  pdirty_t : Pset.t Prmap.t;
  rec_t : fstate Prmap.t;  (** absent = FBot *)
  pending_t : int Prmap.t;  (** unacknowledged dirty calls; absent = 0 *)
  waiters_t : Td.t Prmap.t;
      (** copy_acks gated on registration, as (receiver, sender, id) *)
  roots : Pr.t;
  allocated : Rset.t;
  collected : Rset.t;
  next_id : int Pmap.t;
}

let init ~procs ~refs =
  {
    nprocs = procs;
    refs;
    channels = Ppmap.empty;
    calls = Pmap.empty;
    tdirty_t = Prmap.empty;
    pdirty_t = Prmap.empty;
    rec_t = Prmap.empty;
    pending_t = Prmap.empty;
    waiters_t = Prmap.empty;
    roots = Pr.empty;
    allocated = Rset.empty;
    collected = Rset.empty;
    next_id = Pmap.empty;
  }

let procs c = List.init c.nprocs Fun.id

let channel c src dst =
  Option.value ~default:Fqueue.empty (Ppmap.find_opt (src, dst) c.channels)

let calls c p = Option.value ~default:Fqueue.empty (Pmap.find_opt p c.calls)

let rec_state c p r =
  Option.value ~default:FBot (Prmap.find_opt (p, r) c.rec_t)

let tdirty c p r = Option.value ~default:Td.empty (Prmap.find_opt (p, r) c.tdirty_t)

let pdirty c p r = Option.value ~default:Pset.empty (Prmap.find_opt (p, r) c.pdirty_t)

let dirty_pending c p r = Option.value ~default:0 (Prmap.find_opt (p, r) c.pending_t)

let waiters c p r = Option.value ~default:Td.empty (Prmap.find_opt (p, r) c.waiters_t)

let rooted c p r = Pr.mem (p, r) c.roots

let is_allocated c r = Rset.mem r c.allocated

let is_collected c r = Rset.mem r c.collected

let set_channel c src dst q =
  {
    c with
    channels =
      (if Fqueue.is_empty q then Ppmap.remove (src, dst) c.channels
       else Ppmap.add (src, dst) q c.channels);
  }

let set_calls c p q =
  {
    c with
    calls =
      (if Fqueue.is_empty q then Pmap.remove p c.calls
       else Pmap.add p q c.calls);
  }

let set_tdirty c p r v =
  {
    c with
    tdirty_t =
      (if Td.is_empty v then Prmap.remove (p, r) c.tdirty_t
       else Prmap.add (p, r) v c.tdirty_t);
  }

let set_pdirty c p r v =
  {
    c with
    pdirty_t =
      (if Pset.is_empty v then Prmap.remove (p, r) c.pdirty_t
       else Prmap.add (p, r) v c.pdirty_t);
  }

let set_rec c p r v =
  {
    c with
    rec_t =
      (if v = FBot then Prmap.remove (p, r) c.rec_t
       else Prmap.add (p, r) v c.rec_t);
  }

let set_pending c p r v =
  {
    c with
    pending_t =
      (if v = 0 then Prmap.remove (p, r) c.pending_t
       else Prmap.add (p, r) v c.pending_t);
  }

let set_waiters c p r v =
  {
    c with
    waiters_t =
      (if Td.is_empty v then Prmap.remove (p, r) c.waiters_t
       else Prmap.add (p, r) v c.waiters_t);
  }

let set_root c p r on =
  { c with roots = (if on then Pr.add (p, r) else Pr.remove (p, r)) c.roots }

let post c ~src ~dst m = set_channel c src dst (Fqueue.push m (channel c src dst))

let messages c =
  Ppmap.fold
    (fun (src, dst) q acc ->
      List.fold_left (fun acc m -> (src, dst, m) :: acc) acc (Fqueue.to_list q))
    c.channels []

let needed c r =
  Pr.exists (fun (p, r') -> p <> r.owner && compare_rref r r' = 0) c.roots
  || List.exists
       (fun (_, _, m) ->
         match m with Copy (r', _) -> compare_rref r r' = 0 | _ -> false)
       (messages c)

let collectable c r =
  is_allocated c r
  && (not (is_collected c r))
  && (not (rooted c r.owner r))
  && Pset.is_empty (pdirty c r.owner r)
  && Td.is_empty (tdirty c r.owner r)

let copies_in_transit c r =
  List.fold_left
    (fun acc (_, _, m) ->
      match m with
      | Copy (r', _) when compare_rref r r' = 0 -> acc + 1
      | Copy _ | Copy_ack _ | Dirty _ | Dirty_ack _ | Clean _ -> acc)
    0 (messages c)

let channel_head c ~src ~dst = Fqueue.peek (channel c src dst)

type transition =
  | Allocate of proc * rref
  | Make_copy of proc * proc * rref
  | Drop_root of proc * rref
  | Finalize of proc * rref
  | Collect of rref
  | Do_call of proc
  | Receive of proc * proc

let dirty_queued c p r =
  Fqueue.exists
    (function Dirty_call r' -> compare_rref r r' = 0 | _ -> false)
    (calls c p)

let guard c = function
  | Allocate (p, r) ->
      r.owner = p
      && List.exists (fun r' -> compare_rref r r' = 0) c.refs
      && not (is_allocated c r)
  | Make_copy (p1, p2, r) ->
      p1 <> p2 && p2 >= 0 && p2 < c.nprocs
      && rec_state c p1 r = FOk
      && rooted c p1 r
  | Drop_root (p, r) -> rooted c p r
  | Finalize (p, r) ->
      (not (rooted c p r))
      && Td.is_empty (tdirty c p r)
      && rec_state c p r = FOk
      && p <> r.owner
  | Collect r -> collectable c r
  | Do_call p -> not (Fqueue.is_empty (calls c p))
  | Receive (src, dst) -> not (Fqueue.is_empty (channel c src dst))

let fresh_id c p =
  let seq = Option.value ~default:0 (Pmap.find_opt p c.next_id) in
  ( { origin = p; seq },
    { c with next_id = Pmap.add p (seq + 1) c.next_id } )

(* Flush gated copy_acks once every dirty call is acknowledged: releasing
   a sender before the registration protecting its copy is processed
   would reintroduce the naive race (§5.1's retained dirty_ack). *)
let flush_waiters c p r =
  if dirty_pending c p r = 0 then
    let ws = waiters c p r in
    let c = set_waiters c p r Td.empty in
    Td.fold
      (fun (_, sender, id) c -> post c ~src:p ~dst:sender (Copy_ack (r, id)))
      ws c
  else c

let deliver c ~src ~dst m =
  match m with
  | Copy (r, id) -> (
      match rec_state c dst r with
      | FBot ->
          let c = set_rec c dst r FOk in
          let c = set_root c dst r true in
          let c = set_calls c dst (Fqueue.push (Dirty_call r) (calls c dst)) in
          let c = set_pending c dst r (dirty_pending c dst r + 1) in
          set_waiters c dst r (Td.add (dst, src, id) (waiters c dst r))
      | FOk ->
          let c = set_root c dst r true in
          if dirty_pending c dst r = 0 then
            post c ~src:dst ~dst:src (Copy_ack (r, id))
          else set_waiters c dst r (Td.add (dst, src, id) (waiters c dst r)))
  | Copy_ack (r, id) -> set_tdirty c dst r (Td.remove (dst, src, id) (tdirty c dst r))
  | Dirty r ->
      assert (dst = r.owner);
      let c = set_pdirty c dst r (Pset.add src (pdirty c dst r)) in
      post c ~src:dst ~dst:src (Dirty_ack r)
  | Dirty_ack r ->
      let c = set_pending c dst r (dirty_pending c dst r - 1) in
      flush_waiters c dst r
  | Clean r ->
      assert (dst = r.owner);
      set_pdirty c dst r (Pset.remove src (pdirty c dst r))

let apply_unchecked c t =
  match t with
  | Allocate (p, r) ->
      let c = { c with allocated = Rset.add r c.allocated } in
      let c = set_rec c p r FOk in
      set_root c p r true
  | Make_copy (p1, p2, r) ->
      let id, c = fresh_id c p1 in
      let c = set_tdirty c p1 r (Td.add (p1, p2, id) (tdirty c p1 r)) in
      post c ~src:p1 ~dst:p2 (Copy (r, id))
  | Drop_root (p, r) -> set_root c p r false
  | Finalize (p, r) ->
      let c = set_rec c p r FBot in
      set_calls c p (Fqueue.push (Clean_call r) (calls c p))
  | Collect r ->
      let c = { c with collected = Rset.add r c.collected } in
      set_rec c r.owner r FBot
  | Do_call p -> (
      match Fqueue.pop (calls c p) with
      | None -> invalid_arg "Do_call on empty queue"
      | Some (call, rest) -> (
          let c = set_calls c p rest in
          match call with
          | Dirty_call r -> post c ~src:p ~dst:r.owner (Dirty r)
          | Clean_call r -> post c ~src:p ~dst:r.owner (Clean r)))
  | Receive (src, dst) -> (
      match Fqueue.pop (channel c src dst) with
      | None -> invalid_arg "Receive on empty channel"
      | Some (m, rest) ->
          let c = set_channel c src dst rest in
          deliver c ~src ~dst m)

module Obs = Netobj_obs.Obs
module Trace = Netobj_obs.Trace
module Metrics = Netobj_obs.Metrics

let obs_label = function
  | Allocate _ -> "allocate"
  | Make_copy _ -> "make_copy"
  | Drop_root _ -> "drop_root"
  | Finalize _ -> "finalize"
  | Collect _ -> "collect"
  | Do_call _ -> "do_call"
  | Receive _ -> "receive"

let obs_proc = function
  | Allocate (p, _) | Drop_root (p, _) | Finalize (p, _) | Do_call p -> p
  | Collect r -> r.owner
  | Make_copy (_, p2, _) | Receive (_, p2) -> p2

let obs_transition t =
  if Obs.on () then begin
    let label = obs_label t in
    Trace.instant (Obs.trace ()) ~cat:"fifo_machine" ~space:(obs_proc t) label;
    Metrics.incr (Metrics.counter Metrics.global ("fifo_machine." ^ label))
  end

let apply c t =
  if guard c t then begin
    obs_transition t;
    apply_unchecked c t
  end
  else invalid_arg "Fifo_machine.apply: guard failed"

let step c t = if guard c t then Some (apply_unchecked c t) else None

let enabled_protocol c =
  let receives =
    Ppmap.fold (fun (src, dst) _ acc -> Receive (src, dst) :: acc) c.channels []
  in
  let sends = Pmap.fold (fun p _ acc -> Do_call p :: acc) c.calls [] in
  List.rev_append receives (List.rev sends)

let enabled_environment c =
  let acc = ref [] in
  let push t = acc := t :: !acc in
  List.iter
    (fun r ->
      if not (is_allocated c r) then push (Allocate (r.owner, r))
      else if collectable c r then push (Collect r))
    c.refs;
  Pr.iter (fun (p, r) -> push (Drop_root (p, r))) c.roots;
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          if guard c (Finalize (p, r)) then push (Finalize (p, r));
          if rec_state c p r = FOk && rooted c p r then
            List.iter
              (fun p2 -> if p2 <> p then push (Make_copy (p, p2, r)))
              (procs c))
        (procs c))
    c.refs;
  List.rev !acc

(* --- invariants ---------------------------------------------------------- *)

let owner_tables_nonempty c r =
  (not (Pset.is_empty (pdirty c r.owner r)))
  || not (Td.is_empty (tdirty c r.owner r))

let check c =
  let violations = ref [] in
  let fail fmt = Fmt.kstr (fun s -> violations := ("fifo", s) :: !violations) fmt in
  List.iter
    (fun r ->
      (* Safety requirement: usable client reference or copy in transit
         implies the owner's tables are non-empty. *)
      List.iter
        (fun p ->
          if p <> r.owner && rec_state c p r = FOk && not (owner_tables_nonempty c r)
          then fail "%a usable at %a, owner tables empty" pp_rref r pp_proc p;
          (* No waiters without a pending dirty. *)
          if dirty_pending c p r = 0 && not (Td.is_empty (waiters c p r)) then
            fail "%a waiters at %a with no pending dirty" pp_rref r pp_proc p;
          (* Usable and quiescent (registered) implies a permanent entry:
             the two-state analogue of Lemma 9. *)
          if
            p <> r.owner
            && rec_state c p r = FOk
            && dirty_pending c p r = 0
            && (not (dirty_queued c p r))
            && (not (Pset.mem p (pdirty c r.owner r)))
            && not
                 (List.exists
                    (fun (src, _, m) ->
                      src = p
                      &&
                      match m with
                      | Dirty r' -> compare_rref r r' = 0
                      | _ -> false)
                    (messages c))
          then fail "%a registered-usable at %a but not in dirty set" pp_rref r pp_proc p)
        (procs c);
      if is_collected c r && needed c r then
        fail "%a collected while needed" pp_rref r;
      (* Transient entries match exactly one witness, as Invariant 1. *)
      List.iter
        (fun p ->
          Td.iter
            (fun (p1, p2, id) ->
              if p1 <> p then fail "tdirty holds foreign entry";
              let witnesses =
                (if
                   Fqueue.exists
                     (function
                       | Copy (r', id') ->
                           compare_rref r r' = 0 && compare_msg_id id id' = 0
                       | _ -> false)
                     (channel c p1 p2)
                 then 1
                 else 0)
                + (if Td.mem (p2, p1, id) (waiters c p2 r) then 1 else 0)
                + (if
                     Fqueue.exists
                       (function
                         | Copy_ack (r', id') ->
                             compare_rref r r' = 0 && compare_msg_id id id' = 0
                         | _ -> false)
                       (channel c p2 p1)
                   then 1
                   else 0)
                +
                (* immediate-ack case has no intermediate stage *)
                0
              in
              if witnesses <> 1 then
                fail "%a transient %a: %d witnesses" pp_rref r pp_msg_id id
                  witnesses)
            (tdirty c p r))
        (procs c))
    c.refs;
  !violations

let compare_config a b =
  let ( <?> ) x rest = if x <> 0 then x else rest () in
  Int.compare a.nprocs b.nprocs <?> fun () ->
  Ppmap.compare (Fqueue.compare compare_fmessage) a.channels b.channels
  <?> fun () ->
  Pmap.compare (Fqueue.compare compare_call) a.calls b.calls <?> fun () ->
  Prmap.compare Td.compare a.tdirty_t b.tdirty_t <?> fun () ->
  Prmap.compare Pset.compare a.pdirty_t b.pdirty_t <?> fun () ->
  Prmap.compare Stdlib.compare a.rec_t b.rec_t <?> fun () ->
  Prmap.compare Int.compare a.pending_t b.pending_t <?> fun () ->
  Prmap.compare Td.compare a.waiters_t b.waiters_t <?> fun () ->
  Pr.compare a.roots b.roots <?> fun () ->
  Rset.compare a.allocated b.allocated <?> fun () ->
  Rset.compare a.collected b.collected <?> fun () ->
  Pmap.compare Int.compare a.next_id b.next_id

let pp_transition ppf = function
  | Allocate (p, r) -> Fmt.pf ppf "allocate(%a,%a)" pp_proc p pp_rref r
  | Make_copy (p1, p2, r) ->
      Fmt.pf ppf "make_copy(%a,%a,%a)" pp_proc p1 pp_proc p2 pp_rref r
  | Drop_root (p, r) -> Fmt.pf ppf "drop_root(%a,%a)" pp_proc p pp_rref r
  | Finalize (p, r) -> Fmt.pf ppf "finalize(%a,%a)" pp_proc p pp_rref r
  | Collect r -> Fmt.pf ppf "collect(%a)" pp_rref r
  | Do_call p -> Fmt.pf ppf "do_call(%a)" pp_proc p
  | Receive (src, dst) -> Fmt.pf ppf "receive(%a,%a)" pp_proc src pp_proc dst

let pp_message ppf = function
  | Copy (r, id) -> Fmt.pf ppf "copy(%a,%a)" pp_rref r pp_msg_id id
  | Copy_ack (r, id) -> Fmt.pf ppf "copy_ack(%a,%a)" pp_rref r pp_msg_id id
  | Dirty r -> Fmt.pf ppf "dirty(%a)" pp_rref r
  | Dirty_ack r -> Fmt.pf ppf "dirty_ack(%a)" pp_rref r
  | Clean r -> Fmt.pf ppf "clean(%a)" pp_rref r

let pp_config ppf c =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          if rec_state c p r = FOk || rooted c p r then
            Fmt.pf ppf "%a@%a: %s root=%b pending=%d pdirty={%a}@," pp_rref r
              pp_proc p
              (match rec_state c p r with FBot -> "⊥" | FOk -> "OK")
              (rooted c p r) (dirty_pending c p r)
              Fmt.(list ~sep:(any ",") pp_proc)
              (Pset.elements (pdirty c p r)))
        (procs c))
    c.refs;
  List.iter
    (fun (src, dst, m) ->
      Fmt.pf ppf "%a->%a: %a@," pp_proc src pp_proc dst pp_message m)
    (messages c);
  Fmt.pf ppf "@]"
