open Types

module Chan = Netobj_util.Bag.Make (struct
  type t = message

  let compare = compare_message
end)

module Pset = Set.Make (Int)

module Rset = Set.Make (struct
  type t = rref

  let compare = compare_rref
end)

module Td = Set.Make (struct
  type t = proc * proc * msg_id

  let compare (a1, a2, a3) (b1, b2, b3) =
    match Int.compare a1 b1 with
    | 0 -> ( match Int.compare a2 b2 with 0 -> compare_msg_id a3 b3 | c -> c)
    | c -> c
end)

module Blk = Set.Make (struct
  type t = msg_id * proc

  let compare (a1, a2) (b1, b2) =
    match compare_msg_id a1 b1 with 0 -> Int.compare a2 b2 | c -> c
end)

module Cat = Set.Make (struct
  type t = msg_id * proc * rref

  let compare (a1, a2, a3) (b1, b2, b3) =
    match compare_msg_id a1 b1 with
    | 0 -> ( match Int.compare a2 b2 with 0 -> compare_rref a3 b3 | c -> c)
    | c -> c
end)

module Pr = Set.Make (struct
  type t = proc * rref

  let compare (a1, a2) (b1, b2) =
    match Int.compare a1 b1 with 0 -> compare_rref a2 b2 | c -> c
end)

module Ppmap = Map.Make (struct
  type t = proc * proc

  let compare (a1, a2) (b1, b2) =
    match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c
end)

module Prmap = Map.Make (struct
  type t = proc * rref

  let compare (a1, a2) (b1, b2) =
    match Int.compare a1 b1 with 0 -> compare_rref a2 b2 | c -> c
end)

module Pmap = Map.Make (Int)

(* Canonical representation: a key is absent exactly when its value is the
   empty set/bag/zero, so Map.compare gives a total order on abstract
   configurations. *)
type config = {
  nprocs : int;
  refs : rref list;
  channels : Chan.t Ppmap.t;
  tdirty_t : Td.t Prmap.t;
  pdirty_t : Pset.t Prmap.t;
  rec_t : rstate Prmap.t; (* absent = Bot *)
  blocked_t : Blk.t Prmap.t;
  copy_ack_todo_t : Cat.t Pmap.t;
  dirty_ack_todo_t : Pr.t Pmap.t;
  clean_ack_todo_t : Pr.t Pmap.t;
  dirty_call_todo_t : Rset.t Pmap.t;
  clean_call_todo_t : Rset.t Pmap.t;
  roots : Pr.t;
  allocated : Rset.t;
  collected : Rset.t;
  next_id : int Pmap.t;
}

let init ~procs ~refs =
  List.iter
    (fun r ->
      if r.owner < 0 || r.owner >= procs then
        invalid_arg "Machine.init: reference owner out of range")
    refs;
  {
    nprocs = procs;
    refs;
    channels = Ppmap.empty;
    tdirty_t = Prmap.empty;
    pdirty_t = Prmap.empty;
    rec_t = Prmap.empty;
    blocked_t = Prmap.empty;
    copy_ack_todo_t = Pmap.empty;
    dirty_ack_todo_t = Pmap.empty;
    clean_ack_todo_t = Pmap.empty;
    dirty_call_todo_t = Pmap.empty;
    clean_call_todo_t = Pmap.empty;
    roots = Pr.empty;
    allocated = Rset.empty;
    collected = Rset.empty;
    next_id = Pmap.empty;
  }

let procs c = List.init c.nprocs Fun.id

let universe c = c.refs

(* Generic lookup with default for canonical maps. *)
let find_pr ~default map key = Option.value ~default (Prmap.find_opt key map)

let find_p ~default map key = Option.value ~default (Pmap.find_opt key map)

let channel c ~src ~dst =
  Option.value ~default:Chan.empty (Ppmap.find_opt (src, dst) c.channels)

let messages c =
  Ppmap.fold
    (fun (src, dst) bag acc ->
      Chan.fold (fun m acc -> (src, dst, m) :: acc) bag acc)
    c.channels []
  |> List.rev

let rec_state c p r = find_pr ~default:Bot c.rec_t (p, r)

let tdirty c p r = find_pr ~default:Td.empty c.tdirty_t (p, r)

let pdirty c p r = find_pr ~default:Pset.empty c.pdirty_t (p, r)

let blocked c p r = find_pr ~default:Blk.empty c.blocked_t (p, r)

let copy_ack_todo c p = find_p ~default:Cat.empty c.copy_ack_todo_t p

let dirty_ack_todo c p = find_p ~default:Pr.empty c.dirty_ack_todo_t p

let clean_ack_todo c p = find_p ~default:Pr.empty c.clean_ack_todo_t p

let dirty_call_todo c p = find_p ~default:Rset.empty c.dirty_call_todo_t p

let clean_call_todo c p = find_p ~default:Rset.empty c.clean_call_todo_t p

let rooted c p r = Pr.mem (p, r) c.roots

let is_allocated c r = Rset.mem r c.allocated

let is_collected c r = Rset.mem r c.collected

(* --- canonical updates ------------------------------------------------- *)

let set_tdirty c p r v =
  {
    c with
    tdirty_t =
      (if Td.is_empty v then Prmap.remove (p, r) c.tdirty_t
       else Prmap.add (p, r) v c.tdirty_t);
  }

let set_pdirty c p r v =
  {
    c with
    pdirty_t =
      (if Pset.is_empty v then Prmap.remove (p, r) c.pdirty_t
       else Prmap.add (p, r) v c.pdirty_t);
  }

let set_rec c p r v =
  {
    c with
    rec_t =
      (if v = Bot then Prmap.remove (p, r) c.rec_t
       else Prmap.add (p, r) v c.rec_t);
  }

let set_blocked c p r v =
  {
    c with
    blocked_t =
      (if Blk.is_empty v then Prmap.remove (p, r) c.blocked_t
       else Prmap.add (p, r) v c.blocked_t);
  }

let set_copy_ack_todo c p v =
  {
    c with
    copy_ack_todo_t =
      (if Cat.is_empty v then Pmap.remove p c.copy_ack_todo_t
       else Pmap.add p v c.copy_ack_todo_t);
  }

let set_dirty_ack_todo c p v =
  {
    c with
    dirty_ack_todo_t =
      (if Pr.is_empty v then Pmap.remove p c.dirty_ack_todo_t
       else Pmap.add p v c.dirty_ack_todo_t);
  }

let set_clean_ack_todo c p v =
  {
    c with
    clean_ack_todo_t =
      (if Pr.is_empty v then Pmap.remove p c.clean_ack_todo_t
       else Pmap.add p v c.clean_ack_todo_t);
  }

let set_dirty_call_todo c p v =
  {
    c with
    dirty_call_todo_t =
      (if Rset.is_empty v then Pmap.remove p c.dirty_call_todo_t
       else Pmap.add p v c.dirty_call_todo_t);
  }

let set_clean_call_todo c p v =
  {
    c with
    clean_call_todo_t =
      (if Rset.is_empty v then Pmap.remove p c.clean_call_todo_t
       else Pmap.add p v c.clean_call_todo_t);
  }

let post c ~src ~dst m =
  let bag = Chan.add m (channel c ~src ~dst) in
  { c with channels = Ppmap.add (src, dst) bag c.channels }

let receive c ~src ~dst m =
  let bag = Chan.remove m (channel c ~src ~dst) in
  {
    c with
    channels =
      (if Chan.is_empty bag then Ppmap.remove (src, dst) c.channels
       else Ppmap.add (src, dst) bag c.channels);
  }

let set_root c p r on =
  { c with roots = (if on then Pr.add (p, r) else Pr.remove (p, r)) c.roots }

(* --- ground truth ------------------------------------------------------ *)

let needed c r =
  let client_root =
    Pr.exists (fun (p, r') -> p <> r.owner && compare_rref r r' = 0) c.roots
  in
  let copy_in_transit =
    Ppmap.exists
      (fun _ bag ->
        Chan.exists (function Copy (r', _) -> compare_rref r r' = 0 | _ -> false) bag)
      c.channels
  in
  let pending_delivery =
    Prmap.exists
      (fun (p, r') blk ->
        p <> r.owner && compare_rref r r' = 0 && not (Blk.is_empty blk))
      c.blocked_t
  in
  client_root || copy_in_transit || pending_delivery

let collectable c r =
  is_allocated c r
  && (not (is_collected c r))
  && (not (rooted c r.owner r))
  && Pset.is_empty (pdirty c r.owner r)
  && Td.is_empty (tdirty c r.owner r)

(* --- transitions -------------------------------------------------------- *)

type transition =
  | Allocate of proc * rref
  | Make_copy of proc * proc * rref
  | Drop_root of proc * rref
  | Finalize of proc * rref
  | Collect of rref
  | Receive_copy of proc * proc * rref * msg_id
  | Do_copy_ack of proc * proc * rref * msg_id
  | Receive_copy_ack of proc * proc * rref * msg_id
  | Do_dirty_call of proc * rref
  | Receive_dirty of proc * proc * rref
  | Do_dirty_ack of proc * proc * rref
  | Receive_dirty_ack of proc * proc * rref
  | Do_clean_call of proc * rref
  | Receive_clean of proc * proc * rref
  | Do_clean_ack of proc * proc * rref
  | Receive_clean_ack of proc * proc * rref

let is_environment = function
  | Allocate _ | Make_copy _ | Drop_root _ | Finalize _ | Collect _ -> true
  | Receive_copy _ | Do_copy_ack _ | Receive_copy_ack _ | Do_dirty_call _
  | Receive_dirty _ | Do_dirty_ack _ | Receive_dirty_ack _ | Do_clean_call _
  | Receive_clean _ | Do_clean_ack _ | Receive_clean_ack _ ->
      false

let in_channel c src dst m = Chan.mem m (channel c ~src ~dst)

let guard c = function
  | Allocate (p, r) ->
      r.owner = p && List.exists (fun r' -> compare_rref r r' = 0) c.refs
      && not (is_allocated c r)
  | Make_copy (p1, p2, r) ->
      p1 <> p2 && p2 >= 0 && p2 < c.nprocs
      && rec_state c p1 r = Ok
      && rooted c p1 r
  | Drop_root (p, r) -> rooted c p r
  | Finalize (p, r) ->
      (* locallyLive = reachable from application roots or from the
         transient dirty table, which the spec makes a local-GC root
         (Note 2): a reference being transmitted cannot be finalized. *)
      (not (rooted c p r))
      && Td.is_empty (tdirty c p r)
      && rec_state c p r = Ok
      && p <> r.owner
      && not (Rset.mem r (clean_call_todo c p))
  | Collect r -> collectable c r
  | Receive_copy (p1, p2, r, id) -> in_channel c p1 p2 (Copy (r, id))
  | Do_copy_ack (p1, p2, r, id) -> Cat.mem (id, p2, r) (copy_ack_todo c p1)
  | Receive_copy_ack (p1, p2, r, id) -> in_channel c p1 p2 (Copy_ack (r, id))
  | Do_dirty_call (p, r) ->
      Rset.mem r (dirty_call_todo c p) && rec_state c p r <> Ccitnil
  | Receive_dirty (p1, p2, r) -> p2 = r.owner && in_channel c p1 p2 (Dirty r)
  | Do_dirty_ack (p1, p2, r) -> Pr.mem (p2, r) (dirty_ack_todo c p1)
  | Receive_dirty_ack (p1, p2, r) -> in_channel c p1 p2 (Dirty_ack r)
  | Do_clean_call (p, r) -> Rset.mem r (clean_call_todo c p)
  | Receive_clean (p1, p2, r) -> p2 = r.owner && in_channel c p1 p2 (Clean r)
  | Do_clean_ack (p1, p2, r) -> Pr.mem (p2, r) (clean_ack_todo c p1)
  | Receive_clean_ack (p1, p2, r) -> in_channel c p1 p2 (Clean_ack r)

let fresh_id c p =
  let seq = find_p ~default:0 c.next_id p in
  ({ origin = p; seq }, { c with next_id = Pmap.add p (seq + 1) c.next_id })

let apply_unchecked c t =
  match t with
  | Allocate (p, r) ->
      let c = { c with allocated = Rset.add r c.allocated } in
      let c = set_rec c p r Ok in
      set_root c p r true
  | Make_copy (p1, p2, r) ->
      let id, c = fresh_id c p1 in
      let c = set_tdirty c p1 r (Td.add (p1, p2, id) (tdirty c p1 r)) in
      post c ~src:p1 ~dst:p2 (Copy (r, id))
  | Drop_root (p, r) -> set_root c p r false
  | Finalize (p, r) ->
      set_clean_call_todo c p (Rset.add r (clean_call_todo c p))
  | Collect r ->
      let c = { c with collected = Rset.add r c.collected } in
      set_rec c r.owner r Bot
  | Receive_copy (p1, p2, r, id) -> (
      let c = receive c ~src:p1 ~dst:p2 (Copy (r, id)) in
      match rec_state c p2 r with
      | Nil | Ccitnil ->
          set_blocked c p2 r (Blk.add (id, p1) (blocked c p2 r))
      | Bot ->
          let c = set_rec c p2 r Nil in
          let c =
            set_dirty_call_todo c p2 (Rset.add r (dirty_call_todo c p2))
          in
          set_blocked c p2 r (Blk.add (id, p1) (blocked c p2 r))
      | Ccit ->
          let c = set_rec c p2 r Ccitnil in
          let c =
            set_dirty_call_todo c p2 (Rset.add r (dirty_call_todo c p2))
          in
          set_blocked c p2 r (Blk.add (id, p1) (blocked c p2 r))
      | Ok ->
          (* Cancellation optimisation (spec Note 4): a pending clean call
             is withdrawn and the reference resurrected. *)
          let c =
            set_clean_call_todo c p2 (Rset.remove r (clean_call_todo c p2))
          in
          let c =
            set_copy_ack_todo c p2 (Cat.add (id, p1, r) (copy_ack_todo c p2))
          in
          (* The application at p2 receives the reference again. *)
          set_root c p2 r true)
  | Do_copy_ack (p1, p2, r, id) ->
      let c =
        set_copy_ack_todo c p1 (Cat.remove (id, p2, r) (copy_ack_todo c p1))
      in
      post c ~src:p1 ~dst:p2 (Copy_ack (r, id))
  | Receive_copy_ack (p1, p2, r, id) ->
      let c = receive c ~src:p1 ~dst:p2 (Copy_ack (r, id)) in
      set_tdirty c p2 r (Td.remove (p2, p1, id) (tdirty c p2 r))
  | Do_dirty_call (p, r) ->
      let c = set_dirty_call_todo c p (Rset.remove r (dirty_call_todo c p)) in
      post c ~src:p ~dst:r.owner (Dirty r)
  | Receive_dirty (p1, p2, r) ->
      let c = receive c ~src:p1 ~dst:p2 (Dirty r) in
      let c = set_pdirty c p2 r (Pset.add p1 (pdirty c p2 r)) in
      set_dirty_ack_todo c p2 (Pr.add (p1, r) (dirty_ack_todo c p2))
  | Do_dirty_ack (p1, p2, r) ->
      let c =
        set_dirty_ack_todo c p1 (Pr.remove (p2, r) (dirty_ack_todo c p1))
      in
      post c ~src:p1 ~dst:p2 (Dirty_ack r)
  | Receive_dirty_ack (p1, p2, r) ->
      let c = receive c ~src:p1 ~dst:p2 (Dirty_ack r) in
      let blk = blocked c p2 r in
      let cat =
        Blk.fold
          (fun (id, src) acc -> Cat.add (id, src, r) acc)
          blk (copy_ack_todo c p2)
      in
      let c = set_copy_ack_todo c p2 cat in
      let c = set_blocked c p2 r Blk.empty in
      let c = set_rec c p2 r Ok in
      (* Deserialisation threads resume: the application now holds it. *)
      set_root c p2 r true
  | Do_clean_call (p, r) ->
      let c = set_clean_call_todo c p (Rset.remove r (clean_call_todo c p)) in
      let c = set_rec c p r Ccit in
      post c ~src:p ~dst:r.owner (Clean r)
  | Receive_clean (p1, p2, r) ->
      let c = receive c ~src:p1 ~dst:p2 (Clean r) in
      let c = set_pdirty c p2 r (Pset.remove p1 (pdirty c p2 r)) in
      set_clean_ack_todo c p2 (Pr.add (p1, r) (clean_ack_todo c p2))
  | Do_clean_ack (p1, p2, r) ->
      let c =
        set_clean_ack_todo c p1 (Pr.remove (p2, r) (clean_ack_todo c p1))
      in
      post c ~src:p1 ~dst:p2 (Clean_ack r)
  | Receive_clean_ack (p1, p2, r) -> (
      let c = receive c ~src:p1 ~dst:p2 (Clean_ack r) in
      match rec_state c p2 r with
      | Ccitnil -> set_rec c p2 r Nil
      | Ccit -> set_rec c p2 r Bot
      | (Bot | Nil | Ok) as s ->
          Fmt.invalid_arg "receive_clean_ack in state %a" pp_rstate s)

(* --- observability ------------------------------------------------------ *)

module Obs = Netobj_obs.Obs
module Trace = Netobj_obs.Trace
module Metrics = Netobj_obs.Metrics

let obs_label = function
  | Allocate _ -> "allocate"
  | Make_copy _ -> "make_copy"
  | Drop_root _ -> "drop_root"
  | Finalize _ -> "finalize"
  | Collect _ -> "collect"
  | Receive_copy _ -> "receive_copy"
  | Do_copy_ack _ -> "do_copy_ack"
  | Receive_copy_ack _ -> "receive_copy_ack"
  | Do_dirty_call _ -> "do_dirty_call"
  | Receive_dirty _ -> "receive_dirty"
  | Do_dirty_ack _ -> "do_dirty_ack"
  | Receive_dirty_ack _ -> "receive_dirty_ack"
  | Do_clean_call _ -> "do_clean_call"
  | Receive_clean _ -> "receive_clean"
  | Do_clean_ack _ -> "do_clean_ack"
  | Receive_clean_ack _ -> "receive_clean_ack"

(* The process at which the transition acts: receives happen at the
   destination, acks at the process clearing its todo set. *)
let obs_proc = function
  | Allocate (p, _) | Drop_root (p, _) | Finalize (p, _)
  | Do_dirty_call (p, _) | Do_clean_call (p, _) ->
      p
  | Collect r -> r.owner
  | Make_copy (_, p2, _)
  | Receive_copy (_, p2, _, _)
  | Receive_copy_ack (_, p2, _, _)
  | Receive_dirty (_, p2, _)
  | Receive_dirty_ack (_, p2, _)
  | Receive_clean (_, p2, _)
  | Receive_clean_ack (_, p2, _) ->
      p2
  | Do_copy_ack (p1, _, _, _) | Do_dirty_ack (p1, _, _)
  | Do_clean_ack (p1, _, _) ->
      p1

let obs_rref = function
  | Allocate (_, r) | Make_copy (_, _, r) | Drop_root (_, r)
  | Finalize (_, r) | Collect r
  | Receive_copy (_, _, r, _)
  | Do_copy_ack (_, _, r, _)
  | Receive_copy_ack (_, _, r, _)
  | Do_dirty_call (_, r)
  | Receive_dirty (_, _, r)
  | Do_dirty_ack (_, _, r)
  | Receive_dirty_ack (_, _, r)
  | Do_clean_call (_, r)
  | Receive_clean (_, _, r)
  | Do_clean_ack (_, _, r)
  | Receive_clean_ack (_, _, r) ->
      r

let obs_transition t =
  if Obs.on () then begin
    let label = obs_label t in
    let r = obs_rref t in
    Trace.instant (Obs.trace ()) ~cat:"machine" ~space:(obs_proc t)
      ~args:[ ("ref_owner", Trace.I r.owner); ("ref_index", Trace.I r.index) ]
      label;
    Metrics.incr (Metrics.counter Metrics.global ("machine." ^ label))
  end

let apply c t =
  if guard c t then begin
    obs_transition t;
    apply_unchecked c t
  end
  else invalid_arg "Machine.apply: guard failed"

let step c t = if guard c t then Some (apply_unchecked c t) else None

(* --- enumeration -------------------------------------------------------- *)

let enabled_protocol c =
  let acc = ref [] in
  let push t = acc := t :: !acc in
  (* Message receipts. *)
  Ppmap.iter
    (fun (src, dst) bag ->
      (* Enumerate distinct messages once each; multiplicity does not add
         distinct transitions. *)
      let seen = ref [] in
      Chan.iter
        (fun m ->
          if not (List.exists (fun m' -> compare_message m m' = 0) !seen)
          then begin
            seen := m :: !seen;
            match m with
            | Copy (r, id) -> push (Receive_copy (src, dst, r, id))
            | Copy_ack (r, id) -> push (Receive_copy_ack (src, dst, r, id))
            | Dirty r -> if dst = r.owner then push (Receive_dirty (src, dst, r))
            | Dirty_ack r -> push (Receive_dirty_ack (src, dst, r))
            | Clean r -> if dst = r.owner then push (Receive_clean (src, dst, r))
            | Clean_ack r -> push (Receive_clean_ack (src, dst, r))
          end)
        bag)
    c.channels;
  (* Table-driven emissions. *)
  Pmap.iter
    (fun p cat ->
      Cat.iter (fun (id, dst, r) -> push (Do_copy_ack (p, dst, r, id))) cat)
    c.copy_ack_todo_t;
  Pmap.iter
    (fun p dat -> Pr.iter (fun (dst, r) -> push (Do_dirty_ack (p, dst, r))) dat)
    c.dirty_ack_todo_t;
  Pmap.iter
    (fun p cat -> Pr.iter (fun (dst, r) -> push (Do_clean_ack (p, dst, r))) cat)
    c.clean_ack_todo_t;
  Pmap.iter
    (fun p rs ->
      Rset.iter
        (fun r -> if rec_state c p r <> Ccitnil then push (Do_dirty_call (p, r)))
        rs)
    c.dirty_call_todo_t;
  Pmap.iter
    (fun p rs -> Rset.iter (fun r -> push (Do_clean_call (p, r))) rs)
    c.clean_call_todo_t;
  List.rev !acc

let enabled_environment c =
  let acc = ref [] in
  let push t = acc := t :: !acc in
  let ps = procs c in
  List.iter
    (fun r ->
      if not (is_allocated c r) then push (Allocate (r.owner, r))
      else if collectable c r then push (Collect r))
    c.refs;
  Pr.iter (fun (p, r) -> push (Drop_root (p, r))) c.roots;
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          if guard c (Finalize (p, r)) then push (Finalize (p, r));
          if rec_state c p r = Ok && rooted c p r then
            List.iter
              (fun p2 -> if p2 <> p then push (Make_copy (p, p2, r)))
              ps)
        ps)
    c.refs;
  List.rev !acc

(* --- comparison --------------------------------------------------------- *)

let compare_config a b =
  let ( <?> ) c rest = if c <> 0 then c else rest () in
  Int.compare a.nprocs b.nprocs <?> fun () ->
  List.compare compare_rref a.refs b.refs <?> fun () ->
  Ppmap.compare Chan.compare a.channels b.channels <?> fun () ->
  Prmap.compare Td.compare a.tdirty_t b.tdirty_t <?> fun () ->
  Prmap.compare Pset.compare a.pdirty_t b.pdirty_t <?> fun () ->
  Prmap.compare compare_rstate a.rec_t b.rec_t <?> fun () ->
  Prmap.compare Blk.compare a.blocked_t b.blocked_t <?> fun () ->
  Pmap.compare Cat.compare a.copy_ack_todo_t b.copy_ack_todo_t <?> fun () ->
  Pmap.compare Pr.compare a.dirty_ack_todo_t b.dirty_ack_todo_t <?> fun () ->
  Pmap.compare Pr.compare a.clean_ack_todo_t b.clean_ack_todo_t <?> fun () ->
  Pmap.compare Rset.compare a.dirty_call_todo_t b.dirty_call_todo_t
  <?> fun () ->
  Pmap.compare Rset.compare a.clean_call_todo_t b.clean_call_todo_t
  <?> fun () ->
  Pr.compare a.roots b.roots <?> fun () ->
  Rset.compare a.allocated b.allocated <?> fun () ->
  Rset.compare a.collected b.collected <?> fun () ->
  Pmap.compare Int.compare a.next_id b.next_id

let equal_config a b = compare_config a b = 0

let pp_transition ppf = function
  | Allocate (p, r) -> Fmt.pf ppf "allocate(%a,%a)" pp_proc p pp_rref r
  | Make_copy (p1, p2, r) ->
      Fmt.pf ppf "make_copy(%a,%a,%a)" pp_proc p1 pp_proc p2 pp_rref r
  | Drop_root (p, r) -> Fmt.pf ppf "drop_root(%a,%a)" pp_proc p pp_rref r
  | Finalize (p, r) -> Fmt.pf ppf "finalize(%a,%a)" pp_proc p pp_rref r
  | Collect r -> Fmt.pf ppf "collect(%a)" pp_rref r
  | Receive_copy (p1, p2, r, id) ->
      Fmt.pf ppf "receive_copy(%a,%a,%a,%a)" pp_proc p1 pp_proc p2 pp_rref r
        pp_msg_id id
  | Do_copy_ack (p1, p2, r, id) ->
      Fmt.pf ppf "do_copy_ack(%a,%a,%a,%a)" pp_proc p1 pp_proc p2 pp_rref r
        pp_msg_id id
  | Receive_copy_ack (p1, p2, r, id) ->
      Fmt.pf ppf "receive_copy_ack(%a,%a,%a,%a)" pp_proc p1 pp_proc p2
        pp_rref r pp_msg_id id
  | Do_dirty_call (p, r) ->
      Fmt.pf ppf "do_dirty_call(%a,%a)" pp_proc p pp_rref r
  | Receive_dirty (p1, p2, r) ->
      Fmt.pf ppf "receive_dirty(%a,%a,%a)" pp_proc p1 pp_proc p2 pp_rref r
  | Do_dirty_ack (p1, p2, r) ->
      Fmt.pf ppf "do_dirty_ack(%a,%a,%a)" pp_proc p1 pp_proc p2 pp_rref r
  | Receive_dirty_ack (p1, p2, r) ->
      Fmt.pf ppf "receive_dirty_ack(%a,%a,%a)" pp_proc p1 pp_proc p2 pp_rref r
  | Do_clean_call (p, r) ->
      Fmt.pf ppf "do_clean_call(%a,%a)" pp_proc p pp_rref r
  | Receive_clean (p1, p2, r) ->
      Fmt.pf ppf "receive_clean(%a,%a,%a)" pp_proc p1 pp_proc p2 pp_rref r
  | Do_clean_ack (p1, p2, r) ->
      Fmt.pf ppf "do_clean_ack(%a,%a,%a)" pp_proc p1 pp_proc p2 pp_rref r
  | Receive_clean_ack (p1, p2, r) ->
      Fmt.pf ppf "receive_clean_ack(%a,%a,%a)" pp_proc p1 pp_proc p2 pp_rref r

let pp_config ppf c =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun r ->
      Fmt.pf ppf "%a: alloc=%b collected=%b@," pp_rref r (is_allocated c r)
        (is_collected c r);
      List.iter
        (fun p ->
          let s = rec_state c p r in
          if
            s <> Bot || rooted c p r
            || not (Td.is_empty (tdirty c p r))
            || not (Pset.is_empty (pdirty c p r))
          then
            Fmt.pf ppf "  %a: rec=%a root=%b |tdirty|=%d pdirty={%a}@,"
              pp_proc p pp_rstate s (rooted c p r)
              (Td.cardinal (tdirty c p r))
              Fmt.(list ~sep:(any ",") pp_proc)
              (Pset.elements (pdirty c p r)))
        (procs c))
    c.refs;
  List.iter
    (fun (src, dst, m) ->
      Fmt.pf ppf "  %a->%a: %a@," pp_proc src pp_proc dst pp_message m)
    (messages c);
  Fmt.pf ppf "@]"
