type make = procs:int -> seed:int64 -> Algo.view

let registry : (string * make) list =
  [
    ("naive-count", fun ~procs ~seed -> Naive.create ~mode:Naive.Counting ~procs ~seed);
    ("naive-list", fun ~procs ~seed -> Naive.create ~mode:Naive.Listing ~procs ~seed);
    ("birrell", fun ~procs ~seed -> Birrell_view.create ~procs ~seed);
    ("birrell-fifo", fun ~procs ~seed -> Fifo_view.create ~procs ~seed);
    ("lermen-maurer", fun ~procs ~seed -> Lermen_maurer.create ~procs ~seed);
    ("weighted", fun ~procs ~seed -> Weighted.create ~procs ~seed ());
    ("indirect", fun ~procs ~seed -> Indirect.create ~procs ~seed);
    ("inc-dec", fun ~procs ~seed -> Inc_dec.create ~procs ~seed);
    ("ssp", fun ~procs ~seed -> Ssp.create ~procs ~seed);
    ("mancini", fun ~procs ~seed -> Mancini.create ~procs ~seed);
    ( "fault",
      fun ~procs ~seed ->
        fst
          (Fault.create ~drop_budget:4 ~dup_budget:4 ~timeout_prob:0.05 ~procs
             ~seed ()) );
  ]

let find name = List.assoc_opt name registry

let names = List.map fst registry
