(** The single name → algorithm table.

    Every executable that takes an [--algo] argument (the simulator, the
    bench harness) resolves it here, so adding an algorithm is one line
    in one place and every front end picks it up, docs included.

    [fault] is the fault-tolerant Birrell variant wrapped in its default
    adversary (bounded drops/dups, 5% timeout probability); the other
    entries are the fault-free views. *)

type make = procs:int -> seed:int64 -> Algo.view

(** In presentation order: the naive baselines first, then the
    Birrell-family algorithms, then the alternative schemes. *)
val registry : (string * make) list

val find : string -> make option

(** Registered names, in {!registry} order. *)
val names : string list
