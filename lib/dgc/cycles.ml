type node = { nspace : int; nindex : int }

let pp_node ppf n = Fmt.pf ppf "%d.%d" n.nspace n.nindex

let compare_node a b =
  match compare a.nspace b.nspace with
  | 0 -> compare a.nindex b.nindex
  | c -> c

type report =
  | Cr_live
  | Cr_gone
  | Cr_quiet of { touch : int; dirty : int list; ancestors : node list }

let pp_report ppf = function
  | Cr_live -> Fmt.string ppf "live"
  | Cr_gone -> Fmt.string ppf "gone"
  | Cr_quiet { touch; dirty; ancestors } ->
      Fmt.pf ppf "quiet(touch=%d dirty=%a anc=%a)" touch
        Fmt.(list ~sep:comma int)
        dirty
        Fmt.(list ~sep:comma pp_node)
        ancestors

let equal_report (a : report) (b : report) = a = b

type query = { q_space : int; q_targets : node list }

type phase = Probing | Confirming

type outcome = Pending | Garbage of node list | Aborted of string

(* A query key: (responding space, target).  The owner's report on a
   target and a dirty-set member's report on its surrogate are distinct
   keys for the same node. *)
type key = int * node

let compare_key ((sa, na) : key) ((sb, nb) : key) =
  match compare sa sb with 0 -> compare_node na nb | c -> c

type trial = {
  cap : int;
  mutable t_phase : phase;
  mutable t_outcome : outcome;
  mutable closure : node list;  (* sorted, deduped *)
  queried : (key, unit) Hashtbl.t;
  mutable t_pending : key list;
  reports : (key, report) Hashtbl.t;  (* probing-round answers *)
  epochs : (int, int) Hashtbl.t;  (* responder -> first-seen epoch *)
}

let outcome t = t.t_outcome

let phase t = t.t_phase

let members t = t.closure

let pending t = List.length t.t_pending

let abort t reason =
  match t.t_outcome with
  | Pending ->
      t.t_outcome <- Aborted reason;
      t.t_pending <- []
  | Garbage _ | Aborted _ -> ()

let group_by_space nodes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let prev = try Hashtbl.find tbl n.nspace with Not_found -> [] in
      Hashtbl.replace tbl n.nspace (n :: prev))
    nodes;
  Hashtbl.fold
    (fun sp ns acc -> (sp, List.sort compare_node ns) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Turn a set of keys into per-space query batches, deterministically
   ordered (spaces ascending, targets sorted within each). *)
let queries_of_keys keys =
  let keys = List.sort_uniq compare_key keys in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (sp, n) ->
      let prev = try Hashtbl.find tbl sp with Not_found -> [] in
      Hashtbl.replace tbl sp (n :: prev))
    keys;
  Hashtbl.fold
    (fun sp ns acc ->
      { q_space = sp; q_targets = List.sort compare_node ns } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.q_space b.q_space)

(* Issue the keys not yet queried this trial: mark them queried and
   pending, and return the wire batches. *)
let issue t keys =
  let fresh =
    List.filter (fun k -> not (Hashtbl.mem t.queried k)) keys
    |> List.sort_uniq compare_key
  in
  List.iter (fun k -> Hashtbl.replace t.queried k ()) fresh;
  t.t_pending <- fresh @ t.t_pending;
  queries_of_keys fresh

let start ?(cap = 64) suspect =
  let t =
    {
      cap;
      t_phase = Probing;
      t_outcome = Pending;
      closure = [ suspect ];
      queried = Hashtbl.create 32;
      t_pending = [];
      reports = Hashtbl.create 32;
      epochs = Hashtbl.create 8;
    }
  in
  let qs = issue t [ (suspect.nspace, suspect) ] in
  (t, qs)

let add_member t n =
  if List.exists (fun m -> compare_node m n = 0) t.closure then false
  else begin
    t.closure <- List.sort compare_node (n :: t.closure);
    if List.length t.closure > t.cap then
      abort t (Fmt.str "closure exceeds cap %d" t.cap);
    true
  end

(* One probing-round report: record it and compute the keys it opens
   (dirty-set members asked about this target; ancestors asked about at
   their own space). *)
let probe_report t key (node : node) rep =
  Hashtbl.replace t.reports key rep;
  match rep with
  | Cr_live -> abort t (Fmt.str "%a live" pp_node node); []
  | Cr_gone -> abort t (Fmt.str "%a gone" pp_node node); []
  | Cr_quiet { dirty; ancestors; _ } ->
      let dirty_keys = List.map (fun sp -> (sp, node)) dirty in
      let anc_keys =
        List.filter_map
          (fun a ->
            ignore (add_member t a : bool);
            if t.t_outcome = Pending then Some (a.nspace, a) else None)
          ancestors
      in
      dirty_keys @ anc_keys

let confirm_report t key (node : node) rep =
  match Hashtbl.find_opt t.reports key with
  | Some first when equal_report first rep -> ()
  | Some _ -> abort t (Fmt.str "%a report changed between rounds" pp_node node)
  | None -> abort t (Fmt.str "%a unexpected confirm report" pp_node node)

let deliver t ~space ~epoch reps =
  if t.t_outcome <> Pending then []
  else begin
    (match Hashtbl.find_opt t.epochs space with
    | None -> Hashtbl.replace t.epochs space epoch
    | Some e when e = epoch -> ()
    | Some e ->
        abort t (Fmt.str "space %d epoch moved %d -> %d" space e epoch));
    let opened = ref [] in
    List.iter
      (fun (node, rep) ->
        if t.t_outcome = Pending then begin
          let key = (space, node) in
          if List.exists (fun k -> compare_key k key = 0) t.t_pending then begin
            t.t_pending <-
              List.filter (fun k -> compare_key k key <> 0) t.t_pending;
            match t.t_phase with
            | Probing -> opened := probe_report t key node rep @ !opened
            | Confirming -> confirm_report t key node rep
          end
        end)
      reps;
    if t.t_outcome <> Pending then []
    else begin
      let qs = issue t !opened in
      if t.t_pending <> [] then qs
      else
        match t.t_phase with
        | Probing ->
            (* Closure complete and every report quiet: re-ask everyone
               everything and demand byte-identical answers. *)
            t.t_phase <- Confirming;
            let all = Hashtbl.fold (fun k () acc -> k :: acc) t.queried [] in
            let all = List.sort compare_key all in
            t.t_pending <- all;
            queries_of_keys all
        | Confirming ->
            t.t_outcome <- Garbage t.closure;
            []
    end
  end
