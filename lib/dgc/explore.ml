module M = Machine
module Rng = Netobj_util.Rng

type violation_trace = {
  trace : M.transition list;
  config : M.config;
  violations : Invariants.violation list;
}

type bfs_result = {
  states : int;
  edges : int;
  truncated : bool;
  violation : violation_trace option;
}

module Cfgmap = Map.Make (struct
  type t = M.config

  let compare = M.compare_config
end)

(* The copy budget is tracked alongside each configuration.  Two paths
   reaching the same configuration necessarily minted the same number of
   ids (the per-process id counters are part of the configuration), so the
   budget annotation is a function of the state and memoising on the
   configuration alone is sound. *)
let successors ~copy_budget ~spent c =
  let env =
    List.filter_map
      (fun t ->
        match t with
        | M.Make_copy _ ->
            if spent < copy_budget then Some (t, 1) else None
        | _ -> Some (t, 0))
      (M.enabled_environment c)
  in
  let proto = List.map (fun t -> (t, 0)) (M.enabled_protocol c) in
  env @ proto

let bfs ?(max_states = 2_000_000) ?(check = Invariants.check_all) ~copy_budget
    init =
  let seen = ref (Cfgmap.singleton init []) in
  let queue = Queue.create () in
  Queue.push (init, [], 0) queue;
  let states = ref 1 in
  let edges = ref 0 in
  let truncated = ref false in
  let violation = ref None in
  (match check init with
  | [] -> ()
  | vs -> violation := Some { trace = []; config = init; violations = vs });
  while (not (Queue.is_empty queue)) && !violation = None && not !truncated do
    let c, rtrace, spent = Queue.pop queue in
    List.iter
      (fun (t, cost) ->
        if !violation = None && not !truncated then begin
          incr edges;
          let c' = M.apply c t in
          if not (Cfgmap.mem c' !seen) then begin
            let rtrace' = t :: rtrace in
            (* Check before the budget test: a violation in the state that
               trips [max_states] must be reported, not masked as a
               clean-but-truncated run. *)
            (match check c' with
            | [] -> ()
            | vs ->
                violation :=
                  Some
                    { trace = List.rev rtrace'; config = c'; violations = vs });
            if !states >= max_states then truncated := true
            else begin
              seen := Cfgmap.add c' rtrace' !seen;
              incr states;
              Queue.push (c', rtrace', spent + cost) queue
            end
          end
        end)
      (successors ~copy_budget ~spent c)
  done;
  { states = !states; edges = !edges; truncated = !truncated; violation = !violation }

type walk_result = {
  final : M.config;
  steps_taken : int;
  walk_violation : violation_trace option;
}

let random_walk ?(check = Invariants.check_all) ?(env_weight = 1.0) ~seed
    ~steps ~copy_budget init =
  let rng = Rng.create seed in
  let rec go c spent n rtrace =
    if n >= steps then { final = c; steps_taken = n; walk_violation = None }
    else
      let env =
        List.filter
          (fun t ->
            match t with M.Make_copy _ -> spent < copy_budget | _ -> true)
          (M.enabled_environment c)
      in
      let proto = M.enabled_protocol c in
      if env = [] && proto = [] then
        { final = c; steps_taken = n; walk_violation = None }
      else
        (* Weighted choice between the two pools, then uniform within. *)
        let pick_env =
          match (env, proto) with
          | [], _ -> false
          | _, [] -> true
          | _ ->
              let we = env_weight *. float_of_int (List.length env) in
              let wp = float_of_int (List.length proto) in
              Rng.float rng < we /. (we +. wp)
        in
        let t = Rng.pick rng (if pick_env then env else proto) in
        let spent =
          match t with M.Make_copy _ -> spent + 1 | _ -> spent
        in
        let c' = M.apply c t in
        let rtrace = t :: rtrace in
        match check c' with
        | [] -> go c' spent (n + 1) rtrace
        | vs ->
            {
              final = c';
              steps_taken = n + 1;
              walk_violation =
                Some
                  { trace = List.rev rtrace; config = c'; violations = vs };
            }
  in
  go init 0 0 []

let drain ~include_finalize c =
  let rec go c n =
    if n > 10_000_000 then failwith "Explore.drain: machine does not quiesce";
    let candidates =
      M.enabled_protocol c
      @
      if include_finalize then
        List.filter
          (fun t -> match t with M.Finalize _ -> true | _ -> false)
          (M.enabled_environment c)
      else []
    in
    match candidates with [] -> (c, n) | t :: _ -> go (M.apply c t) (n + 1)
  in
  go c 0
