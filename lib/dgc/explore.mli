(** State-space exploration of the abstract machine.

    Two modes back the paper's proof claims with machine evidence:

    - {!bfs} exhaustively enumerates every configuration reachable from an
      initial one (for small worlds: 2–3 processes, 1–2 references, a
      bounded number of [make_copy] moves) and evaluates a checker on each
      — an executable analogue of "the invariant holds in all reachable
      configurations".
    - {!random_walk} drives long random executions for bigger worlds,
      checking invariants at every step; reproducible from the seed.

    The mutator is bounded through the copy budget: [make_copy] mints a
    fresh message identifier, so the number of ids minted (part of the
    configuration) measures how many copies a path has performed. *)

type violation_trace = {
  trace : Machine.transition list;  (** from the initial config, in order *)
  config : Machine.config;  (** the violating configuration *)
  violations : Invariants.violation list;
}

type bfs_result = {
  states : int;  (** distinct configurations explored; never exceeds
                     [max_states] *)
  edges : int;  (** transitions applied (including ones reaching
                    already-seen configurations) *)
  truncated : bool;  (** a new configuration was reached after
                         [max_states] had already been explored *)
  violation : violation_trace option;  (** first violation found, if any *)
}

(** [bfs ~copy_budget ~check init] explores exhaustively.  [check]
    defaults to {!Invariants.check_all}.  Environment transitions are
    included, with [Make_copy] allowed only while fewer than
    [copy_budget] ids have been minted.  Stops at the first violation.

    Accounting is mutually consistent: [states <= max_states] always,
    [truncated] implies [states = max_states], and every new
    configuration is invariant-checked {e before} the budget test — a
    violation in the state that trips the budget is still reported. *)
val bfs :
  ?max_states:int ->
  ?check:(Machine.config -> Invariants.violation list) ->
  copy_budget:int ->
  Machine.config ->
  bfs_result

type walk_result = {
  final : Machine.config;
  steps_taken : int;
  walk_violation : violation_trace option;
}

(** [random_walk ~seed ~steps ~copy_budget ~env_weight init] fires
    uniformly random enabled transitions ([env_weight] scales how often
    environment moves are picked vs protocol moves), checking invariants
    ([check], default all) after each step.  Stops at the first violation
    or when nothing is enabled. *)
val random_walk :
  ?check:(Machine.config -> Invariants.violation list) ->
  ?env_weight:float ->
  seed:int64 ->
  steps:int ->
  copy_budget:int ->
  Machine.config ->
  walk_result

(** [drain ~include_finalize c] fires protocol transitions (and
    [Finalize] when asked) in deterministic order until none is enabled.
    Returns the quiescent configuration and the number of transitions
    fired.  Termination is guaranteed by the measure (Definition 15);
    raises [Failure] after an implausibly large number of steps. *)
val drain : include_finalize:bool -> Machine.config -> Machine.config * int
