module Net = Netobj_net.Net

let of_net net =
  let stats () =
    let s = Net.stats net in
    {
      Transport.sent = s.Net.sent;
      delivered = s.Net.delivered;
      dropped = s.Net.dropped;
      dropped_src_crashed = s.Net.dropped_src_crashed;
      dropped_dst_crashed = s.Net.dropped_dst_crashed;
      duplicated = s.Net.duplicated;
      bytes = s.Net.bytes;
      frames = s.Net.frames;
      coalesced = s.Net.coalesced;
      reconnects = 0;
    }
  in
  {
    Transport.t_name = "sim";
    t_send = (fun ~src ~dst ~kind payload -> Net.send net ~src ~dst ~kind payload);
    t_post = (fun ~src ~dst ~kind payload -> Net.post net ~src ~dst ~kind payload);
    t_flush = (fun () -> Net.flush net);
    t_set_handler = (fun a h -> Net.set_handler net a h);
    t_connect = (fun _ -> ());
    t_pump = (fun ~timeout:_ -> 0);
    t_close = (fun () -> ());
    t_stats = stats;
    t_stats_by_kind = (fun () -> Net.stats_by_kind net);
    t_reset_stats = (fun () -> Net.reset_stats net);
    t_faults =
      {
        Transport.f_crash = Net.crash net;
        f_restore = Net.restore net;
        f_is_crashed = Net.is_crashed net;
        f_set_partitioned = Net.set_partitioned net;
        f_partitioned = Net.partitioned net;
        f_heal_all = (fun () -> Net.heal_all net);
        f_set_burst =
          (fun ~src ~dst ~loss ~dup ~until ->
            Net.set_burst net ~src ~dst ~loss ~dup ~until ());
        f_set_latency_spike =
          (fun ~src ~dst ~factor ~until ->
            Net.set_latency_spike net ~src ~dst ~factor ~until);
        f_set_filter = Net.set_filter net;
      };
  }
