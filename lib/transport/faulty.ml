module Sched = Netobj_sched.Sched
module Rng = Netobj_util.Rng

(* Fault gates sit on both sides of the wrapped backend: the send gate
   drops before a message reaches the backend (crash/partition/filter/
   loss), the receive gate drops between the backend's delivery fiber
   and the user handler (so a crash injected while a frame is in flight
   on real sockets still eats it, like the simulated network's
   delivery-time checks).  Burst windows and spikes expire against the
   {e virtual} clock, matching [Net], so chaos schedules drive both
   backends identically. *)

type burst = { mutable b_loss : float; mutable b_dup : float; mutable b_until : float }

type spike = { mutable sp_factor : float; mutable sp_until : float }

(* Stall applied per delivery while a latency spike is active: the
   decorator cannot stretch the wire's real latency, so it sleeps the
   delivery fiber [factor × base] on the virtual clock instead. *)
let spike_base = 0.001

type state = {
  sched : Sched.t;
  rng : Rng.t;
  crashed : (int, unit) Hashtbl.t;
  partitions : (int * int, unit) Hashtbl.t;
  bursts : (int * int, burst) Hashtbl.t;
  spikes : (int * int, spike) Hashtbl.t;
  mutable filter : (src:int -> dst:int -> kind:string -> bool) option;
  (* send-gate / receive-gate fault accounting, per logical message *)
  mutable g_dropped : int;
  mutable g_drop_src : int;
  mutable g_drop_dst : int;
  mutable g_dup : int;
  mutable r_dropped : int;
  mutable r_drop_src : int;
  mutable r_drop_dst : int;
}

let pair a b = if a <= b then (a, b) else (b, a)

let partitioned st a b = Hashtbl.mem st.partitions (pair a b)

let is_crashed st a = Hashtbl.mem st.crashed a

let burst_for st key =
  match Hashtbl.find_opt st.bursts key with
  | Some b -> b
  | None ->
      let b = { b_loss = 0.0; b_dup = 0.0; b_until = neg_infinity } in
      Hashtbl.add st.bursts key b;
      b

let effective st key get =
  match Hashtbl.find_opt st.bursts key with
  | Some b when Sched.now st.sched < b.b_until -> get b
  | _ -> 0.0

(* Send gate: [true] when the message is dropped (and accounted). *)
let dropped_at_send st ~src ~dst ~kind =
  ignore kind;
  if is_crashed st src then begin
    st.g_dropped <- st.g_dropped + 1;
    st.g_drop_src <- st.g_drop_src + 1;
    true
  end
  else if is_crashed st dst then begin
    st.g_dropped <- st.g_dropped + 1;
    st.g_drop_dst <- st.g_drop_dst + 1;
    true
  end
  else if partitioned st src dst then begin
    st.g_dropped <- st.g_dropped + 1;
    true
  end
  else if
    match st.filter with Some keep -> not (keep ~src ~dst ~kind) | None -> false
  then begin
    st.g_dropped <- st.g_dropped + 1;
    true
  end
  else begin
    let p = effective st (src, dst) (fun b -> b.b_loss) in
    if p > 0.0 && Rng.chance st.rng p then begin
      st.g_dropped <- st.g_dropped + 1;
      true
    end
    else false
  end

let duplicate_at_send st ~src ~dst =
  let p = effective st (src, dst) (fun b -> b.b_dup) in
  if p > 0.0 && Rng.chance st.rng p then begin
    st.g_dup <- st.g_dup + 1;
    true
  end
  else false

(* Receive gate, run inside the backend's delivery fiber.  [true] when
   the message survives; a live spike stalls it first. *)
let survives_receive st ~src ~dst =
  if is_crashed st dst then begin
    st.r_dropped <- st.r_dropped + 1;
    st.r_drop_dst <- st.r_drop_dst + 1;
    false
  end
  else if is_crashed st src then begin
    st.r_dropped <- st.r_dropped + 1;
    st.r_drop_src <- st.r_drop_src + 1;
    false
  end
  else if partitioned st src dst then begin
    st.r_dropped <- st.r_dropped + 1;
    false
  end
  else begin
    (match Hashtbl.find_opt st.spikes (src, dst) with
    | Some sp when Sched.now st.sched < sp.sp_until ->
        Sched.sleep st.sched (spike_base *. sp.sp_factor)
    | _ -> ());
    true
  end

let wrap ~sched ~seed base =
  let st =
    {
      sched;
      rng = Rng.create seed;
      crashed = Hashtbl.create 8;
      partitions = Hashtbl.create 8;
      bursts = Hashtbl.create 8;
      spikes = Hashtbl.create 8;
      filter = None;
      g_dropped = 0;
      g_drop_src = 0;
      g_drop_dst = 0;
      g_dup = 0;
      r_dropped = 0;
      r_drop_src = 0;
      r_drop_dst = 0;
    }
  in
  let send ~src ~dst ~kind payload =
    if not (dropped_at_send st ~src ~dst ~kind) then begin
      base.Transport.t_send ~src ~dst ~kind payload;
      if duplicate_at_send st ~src ~dst then
        base.Transport.t_send ~src ~dst ~kind payload
    end
  in
  let post ~src ~dst ~kind payload =
    if not (dropped_at_send st ~src ~dst ~kind) then begin
      base.Transport.t_post ~src ~dst ~kind payload;
      if duplicate_at_send st ~src ~dst then
        base.Transport.t_post ~src ~dst ~kind payload
    end
  in
  let set_handler addr h =
    base.Transport.t_set_handler addr
      (fun ~src ~kind ~payload ~off ~len ->
        if survives_receive st ~src ~dst:addr then
          h ~src ~kind ~payload ~off ~len)
  in
  let stats () =
    let s = base.Transport.t_stats () in
    {
      s with
      Transport.delivered = s.Transport.delivered - st.r_dropped;
      dropped = s.Transport.dropped + st.g_dropped + st.r_dropped;
      dropped_src_crashed =
        s.Transport.dropped_src_crashed + st.g_drop_src + st.r_drop_src;
      dropped_dst_crashed =
        s.Transport.dropped_dst_crashed + st.g_drop_dst + st.r_drop_dst;
      duplicated = s.Transport.duplicated + st.g_dup;
    }
  in
  let reset_stats () =
    base.Transport.t_reset_stats ();
    st.g_dropped <- 0;
    st.g_drop_src <- 0;
    st.g_drop_dst <- 0;
    st.g_dup <- 0;
    st.r_dropped <- 0;
    st.r_drop_src <- 0;
    st.r_drop_dst <- 0
  in
  {
    base with
    Transport.t_name = base.Transport.t_name ^ "+faulty";
    t_send = send;
    t_post = post;
    t_set_handler = set_handler;
    t_stats = stats;
    t_reset_stats = reset_stats;
    t_faults =
      {
        Transport.f_crash = (fun a -> Hashtbl.replace st.crashed a ());
        f_restore = (fun a -> Hashtbl.remove st.crashed a);
        f_is_crashed = is_crashed st;
        f_set_partitioned =
          (fun a b on ->
            if on then Hashtbl.replace st.partitions (pair a b) ()
            else Hashtbl.remove st.partitions (pair a b));
        f_partitioned = partitioned st;
        f_heal_all = (fun () -> Hashtbl.reset st.partitions);
        f_set_burst =
          (fun ~src ~dst ~loss ~dup ~until ->
            let b = burst_for st (src, dst) in
            b.b_loss <- loss;
            b.b_dup <- dup;
            b.b_until <- until);
        f_set_latency_spike =
          (fun ~src ~dst ~factor ~until ->
            match Hashtbl.find_opt st.spikes (src, dst) with
            | Some sp ->
                sp.sp_factor <- factor;
                sp.sp_until <- until
            | None ->
                Hashtbl.add st.spikes (src, dst)
                  { sp_factor = factor; sp_until = until });
        f_set_filter = (fun f -> st.filter <- f);
      };
  }
