(** Length-framed wire discipline for real-socket transports.

    Every payload travels as one {e frame}:

    {v
      +----------------+------+--------------------------+
      | length (u32 BE)| flag |  body (length - 1 bytes) |
      +----------------+------+--------------------------+
    v}

    [length] counts the flag byte plus the body, so the smallest legal
    frame is 5 bytes on the wire (an empty body).  The flag byte names
    the body's {!mode}: [Raw] bodies are the bytes as given; the
    [Compressed], [Signed] and [Encrypted] modes are {e reserved} — the
    framing carries them today, but {!encode} refuses to produce them
    and a conforming endpoint rejects them on receipt (see
    {!Unsupported_mode}).  This mirrors the dft wire discipline: the
    one-byte header is the hot-toggle point for compression and
    signing without a framing change.

    Decoding is incremental: a {!decoder} accepts arbitrarily chunked
    byte arrivals (1-byte reads, split length prefixes, several frames
    coalesced in one read) and yields exactly the frames whose bytes
    have fully arrived.  A torn tail — a partial length prefix or a
    frame cut short — is silently retained until its remaining bytes
    arrive, so a prefix of a valid stream always decodes to the clean
    prefix of its frames, the same tolerance the durable store's WAL
    decoder gives a torn log tail. *)

type mode = Raw | Compressed | Signed | Encrypted

val mode_to_byte : mode -> int

val mode_of_byte : int -> mode option

val pp_mode : mode Fmt.t

(** Raised by {!encode} for a reserved (non-[Raw]) mode, and by a
    conforming endpoint on receiving one.  The registered printer names
    both the mode and its flag byte (e.g.
    ["Frame.Unsupported_mode(compressed, flag byte 0x01)"]), so a
    rejection log line identifies exactly which reserved flag was
    seen. *)
exception Unsupported_mode of mode

(** Raised by decoding on a flag byte outside the defined modes, or a
    length field exceeding {!val-max_frame} (a corrupt or hostile
    stream — framing cannot resynchronise, so the connection must be
    dropped). *)
exception Corrupt of string

(** Frames larger than this (flag + body bytes) are rejected by both
    {!encode} and the decoder: a length prefix beyond it means a
    corrupt stream, not a large message. *)
val max_frame : int

(** [encode ~mode body] is the frame's full wire image.
    @raise Unsupported_mode on the reserved modes. *)
val encode : ?mode:mode -> string -> string

(** Bytes of framing overhead per frame (the length prefix plus the
    flag byte). *)
val overhead : int

(** [decode_exact s] decodes a string holding exactly one frame.
    @raise Corrupt if [s] is not exactly one well-formed frame. *)
val decode_exact : string -> mode * string

type decoder

val decoder : unit -> decoder

(** Append a chunk of received bytes ([off]/[len] defaulting to the
    whole string).  Raises nothing: corruption is only detected when a
    complete header is inspected, by {!next}. *)
val feed : decoder -> ?off:int -> ?len:int -> string -> unit

(** Pop the next complete frame, or [None] if the buffered bytes end in
    (at most) a torn tail.
    @raise Corrupt on a bad flag byte or oversized length. *)
val next : decoder -> (mode * string) option

(** Buffered bytes not yet consumed by {!next} — the torn tail. *)
val pending : decoder -> int

(** Discard everything buffered, torn tail included.  Required whenever
    the underlying byte stream is abandoned (connection loss): the next
    connection restarts the stream from a frame boundary, so bytes from
    the dead stream must not prefix it. *)
val reset : decoder -> unit
