(** The simulated network, re-homed behind the {!Transport} signature.

    [of_net net] delegates every operation to the given
    {!Netobj_net.Net.t}: delivery rides the virtual clock (so
    {!Transport.pump} is a constant 0), the fault hooks map onto the
    network's native crash/partition/burst/spike machinery, and the
    accounting is the network's own.  The wrapper holds no state —
    callers that keep the underlying [Net.t] (e.g. the model checker's
    delivery-choice hook, or tests asserting [Net.stats]) observe
    exactly what flows through the transport. *)

val of_net : Netobj_net.Net.t -> Transport.t
