(** Fault-injection decorator over any {!Transport} backend.

    [wrap ~sched ~seed base] returns a transport with the same delivery
    path as [base] plus a full {!Transport.faults} implementation
    layered on top: crashes and partitions drop matching messages at
    the decorator's send and receive gates, loss/duplication bursts
    draw from a seeded {!Netobj_util.Rng} (deterministic given the
    seed and traffic order), drop filters apply at the send gate, and
    latency spikes stall the delivery fiber on the virtual clock
    before the handler runs.

    This is how the chaos nemesis drives real sockets: stack
    [Faulty.wrap] over {!Tcp.transport} and every nemesis operation
    that the simulated network implements natively works unchanged —
    the decorator cannot re-order the wire, but crash/partition/loss/
    dup/filter/spike all behave identically from the runtime's point
    of view.  Fault drops are attributed per logical message in the
    combined {!Transport.stats}, mirroring the simulated network's
    accounting. *)

val wrap :
  sched:Netobj_sched.Sched.t -> seed:int64 -> Transport.t -> Transport.t
