(** The pluggable transport signature.

    The runtime speaks to the world through exactly this surface: queue
    a message ({!post}/{!send}), flush coalesced outboxes, register a
    per-space delivery handler, and (for harnesses) inject faults and
    read traffic accounting.  Everything above it — marshalling, the
    writer pool, per-destination coalescing policy, epoch stamps,
    retries and backoff — is backend-independent, so the same runtime
    runs over the deterministic simulated network
    ({!Transport_sim.of_net}), over real Unix/TCP sockets ({!Tcp}), or
    over either wrapped in the chaos fault decorator ({!Faulty}).

    Contracts every backend must honour:

    - {b Fresh fiber per delivery.}  The handler installed with
      {!set_handler} is invoked in a freshly spawned fiber of the
      driving scheduler; handlers may block.
    - {b Logical vs physical accounting.}  [stats.sent]/[stats.bytes]
      count physical payloads (a coalesced frame counts once);
      [delivered]/[dropped]/{!stats_by_kind} count logical messages (a
      frame's submessages count individually) — including fault events,
      which are attributed per constituent message, never per frame.
    - {b At-most-once, unordered.}  A transport may drop, delay or
      reorder; it must not corrupt or invent messages.  Duplication
      only happens where a fault model injects it.  The protocol layers
      above recover loss via sequence-numbered idempotent retries and
      epoch-stamped packets, so a backend that silently drops while a
      peer is unreachable (e.g. {!Tcp} past its reconnect queue bound)
      stays within the runtime's fault envelope. *)

type addr = int

(** See {!Netobj_net.Net.handler}: the message body is the slice
    [off, off+len) of [payload]. *)
type handler =
  src:addr -> kind:string -> payload:string -> off:int -> len:int -> unit

type stats = {
  sent : int;  (** physical payloads handed to the wire *)
  delivered : int;  (** logical messages handed to handlers *)
  dropped : int;  (** logical messages lost, all causes *)
  dropped_src_crashed : int;
  dropped_dst_crashed : int;
  duplicated : int;
  bytes : int;  (** physical payload bytes (excluding backend framing) *)
  frames : int;  (** coalesced frames among [sent] *)
  coalesced : int;  (** logical messages the frames carried *)
  reconnects : int;
      (** connection (re-)establishment attempts after a failure — 0 on
          backends with no connection state *)
}

val zero_stats : stats

(** Fault-injection hooks.  The simulated backend implements them
    natively; {!Faulty} implements them as a decorator over any
    backend; bare {!Tcp} rejects them (see {!no_faults}) — stack the
    decorator on top to drive a nemesis against real sockets. *)
type faults = {
  f_crash : addr -> unit;
  f_restore : addr -> unit;
  f_is_crashed : addr -> bool;
  f_set_partitioned : addr -> addr -> bool -> unit;
  f_partitioned : addr -> addr -> bool;
  f_heal_all : unit -> unit;
  f_set_burst :
    src:addr -> dst:addr -> loss:float -> dup:float -> until:float -> unit;
  f_set_latency_spike : src:addr -> dst:addr -> factor:float -> until:float -> unit;
  f_set_filter : (src:addr -> dst:addr -> kind:string -> bool) option -> unit;
}

type t = {
  t_name : string;  (** backend identifier, e.g. ["sim"], ["tcp"] *)
  t_send : src:addr -> dst:addr -> kind:string -> string -> unit;
  t_post : src:addr -> dst:addr -> kind:string -> string -> unit;
      (** queue into the per-destination outbox; travels on the next
          {!flush} (backends arm an end-of-instant auto-flush) *)
  t_flush : unit -> unit;
  t_set_handler : addr -> handler -> unit;
  t_connect : addr -> unit;
      (** pre-establish the link to a peer (no-op where meaningless) *)
  t_pump : timeout:float -> int;
      (** drive real I/O for up to [timeout] {e wall-clock} seconds;
          returns the number of logical messages dispatched.  Returns 0
          immediately on backends whose delivery rides the virtual
          clock. *)
  t_close : unit -> unit;
  t_stats : unit -> stats;
  t_stats_by_kind : unit -> (string * (int * int)) list;
  t_reset_stats : unit -> unit;
  t_faults : faults;
}

(** {1 Call-through helpers} — so call sites read like the old [Net]
    module calls. *)

val send : t -> src:addr -> dst:addr -> kind:string -> string -> unit

val post : t -> src:addr -> dst:addr -> kind:string -> string -> unit

val flush : t -> unit

val set_handler : t -> addr -> handler -> unit

val connect : t -> addr -> unit

val pump : t -> timeout:float -> int

val close : t -> unit

val stats : t -> stats

val stats_by_kind : t -> (string * (int * int)) list

val reset_stats : t -> unit

val crash : t -> addr -> unit

val restore : t -> addr -> unit

val is_crashed : t -> addr -> bool

val set_partitioned : t -> addr -> addr -> bool -> unit

val partitioned : t -> addr -> addr -> bool

val heal_all : t -> unit

val set_burst :
  t -> src:addr -> dst:addr -> ?loss:float -> ?dup:float -> until:float -> unit -> unit

val set_latency_spike : t -> src:addr -> dst:addr -> factor:float -> until:float -> unit

val set_filter : t -> (src:addr -> dst:addr -> kind:string -> bool) option -> unit

(** A {!faults} whose mutating hooks raise [Invalid_argument] (wrap the
    backend in {!Faulty} instead) and whose predicates answer "no
    fault". *)
val no_faults : name:string -> faults
