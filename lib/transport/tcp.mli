(** Real Unix/TCP transport backend.

    One {!t} drives any number of local spaces from a single thread:
    each address listed in [serving] gets its own listening socket, and
    each remote destination gets one outgoing connection, established
    lazily and re-established after failures with capped exponential
    backoff.  All sockets are nonblocking; {!Transport.pump} runs one
    [select] round (up to the given wall-clock timeout), accepts,
    reads, reassembles frames across arbitrary packet boundaries, and
    dispatches each submessage in a fresh scheduler fiber.

    On the wire every payload is a {!Frame}: [u32 BE length], a mode
    flag byte ([Raw] today), then a body of
    [uvarint src · uvarint dst · uvarint count ·
    count × (string kind · string payload)] — a direct send is a
    frame with [count = 1]; coalesced outboxes ride as one frame with
    the constituent count, mirroring the simulated network's logical
    vs physical accounting.

    Loss semantics: a frame that was only partially written when a
    connection broke is retransmitted in full on the next connection
    (the receiver discarded the torn tail), so no duplicate can arise
    from reconnection; frames queued beyond the per-peer bound
    ([8 MiB]) while a peer is unreachable are dropped and counted.
    The bare backend has no fault hooks ({!Transport.no_faults}) —
    wrap it in {!Faulty} to aim a nemesis at real sockets. *)

type endpoint = { host : string; port : int }

type t

(** [create ~sched ~serving ~endpoints ()] binds a listener for every
    address in [serving] at its endpoint from [endpoints] (port [0]
    binds an ephemeral port — read it back with {!bound_port}).
    Remote addresses are reached through [endpoints]; an address with
    no entry is still reachable once it dials us — the connection a
    frame arrives on becomes the return route to its source, so pure
    clients need no listener at all.  Raises [Unix.Unix_error] if a
    bind fails — callers that must degrade gracefully (no loopback
    available) catch it and skip. *)
val create :
  sched:Netobj_sched.Sched.t ->
  serving:Transport.addr list ->
  endpoints:(Transport.addr * endpoint) list ->
  unit ->
  t

val transport : t -> Transport.t

(** Actual port of the listener serving [addr] (after port-0 binds). *)
val bound_port : t -> Transport.addr -> int
