module Sched = Netobj_sched.Sched
module Wire = Netobj_pickle.Wire
module Metrics = Netobj_obs.Metrics
module Obs = Netobj_obs.Obs

let m_sent = Metrics.counter Metrics.global "transport.tcp.sent"

let m_bytes = Metrics.counter Metrics.global "transport.tcp.bytes"

let m_delivered = Metrics.counter Metrics.global "transport.tcp.delivered"

let m_dropped = Metrics.counter Metrics.global "transport.tcp.dropped"

let m_reconnects = Metrics.counter Metrics.global "transport.tcp.reconnects"

type endpoint = { host : string; port : int }

(* Per-peer send queue bound: past this, frames to an unreachable peer
   are dropped (and counted) rather than buffered without limit.  The
   protocol layers recover via idempotent retries. *)
let max_queued_bytes = 8 * 1024 * 1024

let initial_backoff = 0.05

let max_backoff = 1.0

type inbound = { in_fd : Unix.file_descr; in_dec : Frame.decoder }

(* One outgoing connection per remote address.  [p_wbuf]/[p_woff] hold
   the frame currently on the wire; on connection loss the write offset
   rewinds to 0 so the frame is retransmitted whole on the next
   connection — the receiver binds its decoder to the connection
   ([in_dec]), so the torn tail died with the socket and retransmission
   cannot duplicate.  [p_dec] reads the peer's replies on this dialled
   connection and outlives it, so it must be reset whenever the
   connection drops: a reply frame torn by the old socket must not
   prefix the fresh connection's stream. *)
type peer = {
  p_addr : int;
  mutable p_fd : Unix.file_descr option;
  mutable p_connecting : bool;
  p_dec : Frame.decoder;
  p_queue : (string * int) Queue.t;
  mutable p_queued_bytes : int;
  mutable p_wbuf : string;
  mutable p_woff : int;
  mutable p_backoff : float;
  mutable p_next_attempt : float;
  mutable p_failed_once : bool;
}

type outbox = { ob_w : Wire.Writer.t; mutable ob_n : int }

type t = {
  sched : Sched.t;
  endpoints : (int, endpoint) Hashtbl.t;
  listeners : (int, Unix.file_descr) Hashtbl.t;
  mutable inbound : inbound list;
  peers : (int, peer) Hashtbl.t;
  handlers : (int, Transport.handler) Hashtbl.t;
  outboxes : (int * int, outbox) Hashtbl.t;
  mutable flush_armed : bool;
  by_kind : (string, (int * int) ref) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  mutable frames : int;
  mutable coalesced : int;
  mutable reconnects : int;
  mutable closed : bool;
}

let resolve host =
  try Unix.inet_addr_of_string host
  with _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> invalid_arg ("Tcp: cannot resolve host " ^ host))

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let create ~sched ~serving ~endpoints () =
  (* A peer resetting mid-write must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let eps = Hashtbl.create 16 in
  List.iter (fun (a, ep) -> Hashtbl.replace eps a ep) endpoints;
  let t =
    {
      sched;
      endpoints = eps;
      listeners = Hashtbl.create 4;
      inbound = [];
      peers = Hashtbl.create 16;
      handlers = Hashtbl.create 16;
      outboxes = Hashtbl.create 16;
      flush_armed = false;
      by_kind = Hashtbl.create 16;
      sent = 0;
      delivered = 0;
      dropped = 0;
      bytes = 0;
      frames = 0;
      coalesced = 0;
      reconnects = 0;
      closed = false;
    }
  in
  (try
     List.iter
       (fun addr ->
         let ep =
           match Hashtbl.find_opt eps addr with
           | Some ep -> ep
           | None ->
               invalid_arg (Printf.sprintf "Tcp.create: no endpoint for %d" addr)
         in
         let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
         Unix.set_nonblock fd;
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         (try Unix.bind fd (Unix.ADDR_INET (resolve ep.host, ep.port))
          with e ->
            close_quietly fd;
            raise e);
         Unix.listen fd 64;
         Hashtbl.replace t.listeners addr fd)
       serving
   with e ->
     Hashtbl.iter (fun _ fd -> close_quietly fd) t.listeners;
     raise e);
  t

let bound_port t addr =
  match Hashtbl.find_opt t.listeners addr with
  | None -> invalid_arg (Printf.sprintf "Tcp.bound_port: not serving %d" addr)
  | Some fd -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false)

(* Destination endpoint, preferring our own listener when the address is
   served in-process — lets a single process talk to itself over real
   sockets even when created with port 0. *)
let endpoint_for t addr =
  if Hashtbl.mem t.listeners addr then
    { host = "127.0.0.1"; port = bound_port t addr }
  else
    match Hashtbl.find_opt t.endpoints addr with
    | Some ep -> ep
    | None -> invalid_arg (Printf.sprintf "Tcp: no endpoint for %d" addr)

let peer_for t addr =
  match Hashtbl.find_opt t.peers addr with
  | Some p -> p
  | None ->
      let p =
        {
          p_addr = addr;
          p_fd = None;
          p_connecting = false;
          p_dec = Frame.decoder ();
          p_queue = Queue.create ();
          p_queued_bytes = 0;
          p_wbuf = "";
          p_woff = 0;
          p_backoff = initial_backoff;
          p_next_attempt = 0.0;
          p_failed_once = false;
        }
      in
      Hashtbl.add t.peers addr p;
      p

(* A failed connect or broken connection: drop the socket, rewind the
   in-flight frame, and back off before the next attempt (doubling up to
   the cap).  Every post-failure attempt counts as a reconnect.  A
   learned connection (see [learn]) is also registered in [inbound], so
   it must leave that list when it dies or select would see a closed
   fd. *)
let conn_lost t p =
  (match p.p_fd with
  | Some fd ->
      close_quietly fd;
      t.inbound <- List.filter (fun c -> c.in_fd != fd) t.inbound
  | None -> ());
  p.p_fd <- None;
  p.p_connecting <- false;
  p.p_woff <- 0;
  Frame.reset p.p_dec;
  p.p_failed_once <- true;
  p.p_next_attempt <- Unix.gettimeofday () +. p.p_backoff;
  p.p_backoff <- Float.min max_backoff (p.p_backoff *. 2.0)

let has_endpoint t addr =
  Hashtbl.mem t.listeners addr || Hashtbl.mem t.endpoints addr

(* Learn a return route from an incoming connection: when a frame from
   [src] arrives and we have no configured way to reach [src], the
   connection it arrived on becomes [src]'s peer connection, so replies
   ride the caller's own socket.  This is what lets a pure client (no
   listener, ephemeral everything) converse with a server that never
   heard of it.  A newer connection from the same source supersedes the
   old one — the client only reconnects when the previous socket died. *)
let learn t ~src fd =
  if not (has_endpoint t src) then begin
    let p = peer_for t src in
    (match p.p_fd with
    | Some old when old != fd ->
        close_quietly old;
        t.inbound <- List.filter (fun c -> c.in_fd != old) t.inbound;
        p.p_woff <- 0;
        Frame.reset p.p_dec
    | Some _ -> ()
    | None -> ());
    p.p_fd <- Some fd;
    p.p_connecting <- false;
    p.p_backoff <- initial_backoff
  end

let start_connect t p =
  let ep = endpoint_for t p.p_addr in
  if p.p_failed_once then begin
    t.reconnects <- t.reconnects + 1;
    if Obs.on () then Metrics.incr m_reconnects
  end;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  match Unix.connect fd (Unix.ADDR_INET (resolve ep.host, ep.port)) with
  | () ->
      p.p_fd <- Some fd;
      p.p_connecting <- false
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
      p.p_fd <- Some fd;
      p.p_connecting <- true
  | exception Unix.Unix_error (_, _, _) ->
      close_quietly fd;
      conn_lost t p

(* {2 Accounting} — mirrors [Net]: logical per application message,
   physical per payload handed to the wire (frame bodies, excluding the
   5-byte frame header). *)

let account_logical t kind len =
  if Obs.on () then begin
    Metrics.incr (Metrics.counter Metrics.global ("net.sent." ^ kind));
    Metrics.add (Metrics.counter Metrics.global ("net.bytes." ^ kind)) len
  end;
  let cell =
    match Hashtbl.find_opt t.by_kind kind with
    | Some c -> c
    | None ->
        let c = ref (0, 0) in
        Hashtbl.add t.by_kind kind c;
        c
  in
  let n, b = !cell in
  cell := (n + 1, b + len)

let account_physical t len =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + len;
  if Obs.on () then begin
    Metrics.incr m_sent;
    Metrics.add m_bytes len
  end

let drop t count =
  t.dropped <- t.dropped + count;
  if Obs.on () then Metrics.add m_dropped count

let enqueue t ~dst ~count frame =
  let p = peer_for t dst in
  if p.p_queued_bytes + String.length frame > max_queued_bytes then
    drop t count
  else begin
    Queue.add (frame, count) p.p_queue;
    p.p_queued_bytes <- p.p_queued_bytes + String.length frame
  end

let body_header w ~src ~dst ~count =
  Wire.Writer.uvarint w src;
  Wire.Writer.uvarint w dst;
  Wire.Writer.uvarint w count

let send t ~src ~dst ~kind payload =
  account_logical t kind (String.length payload);
  let body =
    Wire.Writer.with_pooled (fun w ->
        body_header w ~src ~dst ~count:1;
        Wire.Writer.string w kind;
        Wire.Writer.string w payload;
        Bytes.unsafe_to_string (Wire.Writer.to_bytes w))
  in
  account_physical t (String.length body);
  enqueue t ~dst ~count:1 (Frame.encode body)

(* {2 Coalescing} — same discipline as the simulated network: [post]
   accumulates submessages per (src, dst) outbox; [flush] packs each
   outbox into one frame, fired explicitly or by a 0-delay timer at the
   end of the posting instant. *)

let flush t =
  t.flush_armed <- false;
  if Hashtbl.length t.outboxes > 0 then begin
    let pending =
      Hashtbl.fold (fun key ob acc -> (key, ob) :: acc) t.outboxes []
      |> List.sort (fun ((a, b), _) ((c, d), _) ->
             match Int.compare a c with 0 -> Int.compare b d | n -> n)
    in
    Hashtbl.reset t.outboxes;
    List.iter
      (fun ((src, dst), ob) ->
        let count = ob.ob_n in
        let body =
          Wire.Writer.with_pooled (fun w ->
              body_header w ~src ~dst ~count;
              Wire.Writer.raw w
                (Bytes.unsafe_to_string (Wire.Writer.to_bytes ob.ob_w));
              Bytes.unsafe_to_string (Wire.Writer.to_bytes w))
        in
        Wire.Writer.return ob.ob_w;
        account_physical t (String.length body);
        t.frames <- t.frames + 1;
        t.coalesced <- t.coalesced + count;
        enqueue t ~dst ~count (Frame.encode body))
      pending
  end

let post t ~src ~dst ~kind payload =
  account_logical t kind (String.length payload);
  let ob =
    match Hashtbl.find_opt t.outboxes (src, dst) with
    | Some ob -> ob
    | None ->
        let ob = { ob_w = Wire.Writer.checkout (); ob_n = 0 } in
        Hashtbl.add t.outboxes (src, dst) ob;
        ob
  in
  Wire.Writer.string ob.ob_w kind;
  Wire.Writer.string ob.ob_w payload;
  ob.ob_n <- ob.ob_n + 1;
  if not t.flush_armed then begin
    t.flush_armed <- true;
    Sched.timer t.sched ~name:"tcp-flush" 0.0 (fun () -> flush t)
  end

(* {2 Receiving} *)

let read_chunk = Bytes.create 65536

let dispatch_body t ?learn_fd body =
  let r = Wire.Reader.of_string body in
  let src = Wire.Reader.uvarint r in
  let dst = Wire.Reader.uvarint r in
  (match learn_fd with Some fd -> learn t ~src fd | None -> ());
  let count = Wire.Reader.uvarint r in
  let n = ref 0 in
  for _ = 1 to count do
    let kind = Wire.Reader.string r in
    let len = Wire.Reader.uvarint r in
    let off = Wire.Reader.pos r in
    Wire.Reader.skip r len;
    match Hashtbl.find_opt t.handlers dst with
    | None -> drop t 1
    | Some h ->
        t.delivered <- t.delivered + 1;
        if Obs.on () then Metrics.incr m_delivered;
        incr n;
        Sched.spawn t.sched
          ~name:(Printf.sprintf "tcp-delivery-%d>%d:%s" src dst kind)
          (fun () -> h ~src ~kind ~payload:body ~off ~len)
  done;
  !n

let drain_decoder t ?learn_fd dec =
  let n = ref 0 in
  let rec loop () =
    match Frame.next dec with
    | Some (Frame.Raw, body) ->
        n := !n + dispatch_body t ?learn_fd body;
        loop ()
    | Some (m, _) -> raise (Frame.Unsupported_mode m)
    | None -> ()
  in
  loop ();
  !n

(* Read everything currently available on [fd] into [dec].  Returns
   [(dispatched, alive)]. *)
let read_into t ?learn_fd fd dec =
  let dispatched = ref 0 in
  let alive = ref true in
  let continue = ref true in
  while !continue do
    match Unix.read fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 ->
        alive := false;
        continue := false
    | n -> (
        match
          Frame.feed dec (Bytes.sub_string read_chunk 0 n);
          drain_decoder t ?learn_fd dec
        with
        | k -> dispatched := !dispatched + k
        | exception (Frame.Corrupt _ | Frame.Unsupported_mode _) ->
            (* A stream we cannot parse is a dead stream. *)
            alive := false;
            continue := false)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        alive := false;
        continue := false
  done;
  (!dispatched, !alive)

(* {2 Writing} *)

let rec write_pending t p fd =
  if p.p_wbuf = "" then
    match Queue.take_opt p.p_queue with
    | None -> ()
    | Some (frame, _count) ->
        p.p_queued_bytes <- p.p_queued_bytes - String.length frame;
        p.p_wbuf <- frame;
        p.p_woff <- 0;
        write_pending t p fd
  else
    let remaining = String.length p.p_wbuf - p.p_woff in
    match Unix.write_substring fd p.p_wbuf p.p_woff remaining with
    | n ->
        p.p_woff <- p.p_woff + n;
        if p.p_woff = String.length p.p_wbuf then begin
          p.p_wbuf <- "";
          p.p_woff <- 0;
          write_pending t p fd
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_pending t p fd
    | exception Unix.Unix_error (_, _, _) -> conn_lost t p

let peer_has_output p = p.p_wbuf <> "" || not (Queue.is_empty p.p_queue)

let accept_all t lfd =
  let continue = ref true in
  while !continue do
    match Unix.accept lfd with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        t.inbound <- { in_fd = fd; in_dec = Frame.decoder () } :: t.inbound
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

let pump t ~timeout =
  if t.closed then 0
  else begin
    let now = Unix.gettimeofday () in
    Hashtbl.iter
      (fun _ p ->
        (* Peers with no configured endpoint were learned from incoming
           connections: we cannot dial them, only wait for them to dial
           us again. *)
        if
          p.p_fd = None
          && peer_has_output p
          && has_endpoint t p.p_addr
          && now >= p.p_next_attempt
        then start_connect t p)
      t.peers;
    let listeners = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.listeners [] in
    let inbound_fds = List.map (fun c -> c.in_fd) t.inbound in
    let established, connecting =
      Hashtbl.fold
        (fun _ p (est, conn) ->
          match p.p_fd with
          | Some fd when p.p_connecting -> (est, (fd, p) :: conn)
          | Some fd -> ((fd, p) :: est, conn)
          | None -> (est, conn))
        t.peers ([], [])
    in
    let rds = listeners @ inbound_fds @ List.map fst established in
    let wrs =
      List.map fst connecting
      @ List.filter_map
          (fun (fd, p) -> if peer_has_output p then Some fd else None)
          established
    in
    (* When nothing is ready, the soonest reconnect deadline bounds the
       wait so backoff expiry doesn't stall behind a long select.  A
       negative caller timeout means "block" and must not enter the
       [Float.min] — it would undercut every deadline and the pending
       reconnects would never fire. *)
    let timeout =
      let soonest =
        Hashtbl.fold
          (fun _ p acc ->
            if p.p_fd = None && peer_has_output p && has_endpoint t p.p_addr
            then Float.min acc (Float.max 0.0 (p.p_next_attempt -. now))
            else acc)
          t.peers Float.infinity
      in
      if soonest = Float.infinity then timeout
      else if timeout < 0.0 then soonest
      else Float.min timeout soonest
    in
    match Unix.select rds wrs [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
    | readable, writable, _ ->
        let dispatched = ref 0 in
        (* Completed (or failed) connection attempts first, so their
           queued frames can ride this round's write pass. *)
        List.iter
          (fun (fd, p) ->
            if List.memq fd writable then
              match Unix.getsockopt_error fd with
              | None ->
                  p.p_connecting <- false;
                  p.p_backoff <- initial_backoff;
                  if peer_has_output p then write_pending t p fd
              | Some _ -> conn_lost t p)
          connecting;
        List.iter
          (fun lfd -> if List.memq lfd readable then accept_all t lfd)
          listeners;
        (* Inbound reads: iterate a snapshot ([learn] may drop superseded
           entries from [t.inbound] as we go), collect the dead, then
           prune whatever list state the reads left behind. *)
        let dead = ref [] in
        List.iter
          (fun c ->
            if List.memq c.in_fd readable then begin
              let n, alive = read_into t ~learn_fd:c.in_fd c.in_fd c.in_dec in
              dispatched := !dispatched + n;
              if not alive then dead := c.in_fd :: !dead
            end)
          t.inbound;
        List.iter
          (fun fd ->
            Hashtbl.iter
              (fun _ p ->
                match p.p_fd with
                | Some fd' when fd' == fd ->
                    p.p_fd <- None;
                    p.p_connecting <- false;
                    p.p_woff <- 0;
                    Frame.reset p.p_dec
                | _ -> ())
              t.peers;
            close_quietly fd)
          !dead;
        t.inbound <-
          List.filter (fun c -> not (List.memq c.in_fd !dead)) t.inbound;
        let is_inbound fd = List.exists (fun c -> c.in_fd == fd) t.inbound in
        List.iter
          (fun (fd, p) ->
            match p.p_fd with
            | Some fd' when fd' == fd ->
                (* Readability on a dialled-out connection carries the
                   peer's replies, or its EOF/reset.  Learned connections
                   were already drained by the inbound pass above — their
                   bytes belong to that decoder, never [p_dec]. *)
                (if List.memq fd readable && not (is_inbound fd) then begin
                   let n, alive = read_into t fd p.p_dec in
                   dispatched := !dispatched + n;
                   if not alive then conn_lost t p
                 end);
                (match p.p_fd with
                | Some fd'' when fd'' == fd && not p.p_connecting ->
                    if peer_has_output p then write_pending t p fd
                | _ -> ())
            | _ -> ())
          established;
        !dispatched
  end

let connect t addr =
  let p = peer_for t addr in
  if p.p_fd = None && has_endpoint t addr then start_connect t p

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* Messages still pending — posted but unflushed, or queued towards
       an unreachable peer — never reach a socket: count them dropped,
       and give checked-out outbox writers back to the pool. *)
    Hashtbl.iter
      (fun _ ob ->
        drop t ob.ob_n;
        Wire.Writer.return ob.ob_w)
      t.outboxes;
    Hashtbl.reset t.outboxes;
    Hashtbl.iter (fun _ fd -> close_quietly fd) t.listeners;
    Hashtbl.reset t.listeners;
    List.iter (fun c -> close_quietly c.in_fd) t.inbound;
    t.inbound <- [];
    Hashtbl.iter
      (fun _ p ->
        Queue.iter (fun (_, count) -> drop t count) p.p_queue;
        match p.p_fd with Some fd -> close_quietly fd | None -> ())
      t.peers;
    Hashtbl.reset t.peers
  end

let stats t =
  {
    Transport.sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    dropped_src_crashed = 0;
    dropped_dst_crashed = 0;
    duplicated = 0;
    bytes = t.bytes;
    frames = t.frames;
    coalesced = t.coalesced;
    reconnects = t.reconnects;
  }

let stats_by_kind t =
  Hashtbl.fold (fun k c acc -> (k, !c) :: acc) t.by_kind []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_stats t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.bytes <- 0;
  t.frames <- 0;
  t.coalesced <- 0;
  t.reconnects <- 0;
  Hashtbl.reset t.by_kind

let transport t =
  {
    Transport.t_name = "tcp";
    t_send = (fun ~src ~dst ~kind payload -> send t ~src ~dst ~kind payload);
    t_post = (fun ~src ~dst ~kind payload -> post t ~src ~dst ~kind payload);
    t_flush = (fun () -> flush t);
    t_set_handler = (fun a h -> Hashtbl.replace t.handlers a h);
    t_connect = (fun a -> connect t a);
    t_pump = (fun ~timeout -> pump t ~timeout);
    t_close = (fun () -> close t);
    t_stats = (fun () -> stats t);
    t_stats_by_kind = (fun () -> stats_by_kind t);
    t_reset_stats = (fun () -> reset_stats t);
    t_faults = Transport.no_faults ~name:"tcp";
  }
