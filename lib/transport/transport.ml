type addr = int

type handler =
  src:addr -> kind:string -> payload:string -> off:int -> len:int -> unit

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  dropped_src_crashed : int;
  dropped_dst_crashed : int;
  duplicated : int;
  bytes : int;
  frames : int;
  coalesced : int;
  reconnects : int;
}

let zero_stats =
  {
    sent = 0;
    delivered = 0;
    dropped = 0;
    dropped_src_crashed = 0;
    dropped_dst_crashed = 0;
    duplicated = 0;
    bytes = 0;
    frames = 0;
    coalesced = 0;
    reconnects = 0;
  }

type faults = {
  f_crash : addr -> unit;
  f_restore : addr -> unit;
  f_is_crashed : addr -> bool;
  f_set_partitioned : addr -> addr -> bool -> unit;
  f_partitioned : addr -> addr -> bool;
  f_heal_all : unit -> unit;
  f_set_burst :
    src:addr -> dst:addr -> loss:float -> dup:float -> until:float -> unit;
  f_set_latency_spike : src:addr -> dst:addr -> factor:float -> until:float -> unit;
  f_set_filter : (src:addr -> dst:addr -> kind:string -> bool) option -> unit;
}

type t = {
  t_name : string;
  t_send : src:addr -> dst:addr -> kind:string -> string -> unit;
  t_post : src:addr -> dst:addr -> kind:string -> string -> unit;
  t_flush : unit -> unit;
  t_set_handler : addr -> handler -> unit;
  t_connect : addr -> unit;
  t_pump : timeout:float -> int;
  t_close : unit -> unit;
  t_stats : unit -> stats;
  t_stats_by_kind : unit -> (string * (int * int)) list;
  t_reset_stats : unit -> unit;
  t_faults : faults;
}

let send t = t.t_send

let post t = t.t_post

let flush t = t.t_flush ()

let set_handler t a h = t.t_set_handler a h

let connect t a = t.t_connect a

let pump t ~timeout = t.t_pump ~timeout

let close t = t.t_close ()

let stats t = t.t_stats ()

let stats_by_kind t = t.t_stats_by_kind ()

let reset_stats t = t.t_reset_stats ()

let crash t a = t.t_faults.f_crash a

let restore t a = t.t_faults.f_restore a

let is_crashed t a = t.t_faults.f_is_crashed a

let set_partitioned t a b on = t.t_faults.f_set_partitioned a b on

let partitioned t a b = t.t_faults.f_partitioned a b

let heal_all t = t.t_faults.f_heal_all ()

let set_burst t ~src ~dst ?(loss = 0.0) ?(dup = 0.0) ~until () =
  t.t_faults.f_set_burst ~src ~dst ~loss ~dup ~until

let set_latency_spike t ~src ~dst ~factor ~until =
  t.t_faults.f_set_latency_spike ~src ~dst ~factor ~until

let set_filter t f = t.t_faults.f_set_filter f

let no_faults ~name =
  let nope what _ =
    invalid_arg
      (Printf.sprintf
         "Transport.%s: backend %s has no fault hooks (wrap it in \
          Transport.Faulty)"
         what name)
  in
  {
    f_crash = nope "crash";
    f_restore = nope "restore";
    f_is_crashed = (fun _ -> false);
    f_set_partitioned = (fun a _ _ -> nope "set_partitioned" a);
    f_partitioned = (fun _ _ -> false);
    f_heal_all = (fun () -> ());
    f_set_burst =
      (fun ~src ~dst:_ ~loss:_ ~dup:_ ~until:_ -> nope "set_burst" src);
    f_set_latency_spike =
      (fun ~src ~dst:_ ~factor:_ ~until:_ -> nope "set_latency_spike" src);
    f_set_filter =
      (fun f -> match f with None -> () | Some _ -> nope "set_filter" ());
  }
