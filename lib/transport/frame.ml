type mode = Raw | Compressed | Signed | Encrypted

let mode_to_byte = function
  | Raw -> 0
  | Compressed -> 1
  | Signed -> 2
  | Encrypted -> 3

let mode_of_byte = function
  | 0 -> Some Raw
  | 1 -> Some Compressed
  | 2 -> Some Signed
  | 3 -> Some Encrypted
  | _ -> None

let pp_mode ppf m =
  Fmt.string ppf
    (match m with
    | Raw -> "raw"
    | Compressed -> "compressed"
    | Signed -> "signed"
    | Encrypted -> "encrypted")

exception Unsupported_mode of mode

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Unsupported_mode m ->
        Some
          (Fmt.str "Frame.Unsupported_mode(%a, flag byte 0x%02x)" pp_mode m
             (mode_to_byte m))
    | Corrupt msg -> Some (Printf.sprintf "Frame.Corrupt(%s)" msg)
    | _ -> None)

let max_frame = 64 * 1024 * 1024

let overhead = 5

module Wire = Netobj_pickle.Wire

let encode ?(mode = Raw) body =
  (match mode with Raw -> () | m -> raise (Unsupported_mode m));
  let len = String.length body + 1 in
  if len > max_frame then
    raise (Corrupt (Printf.sprintf "frame too large: %d bytes" len));
  Wire.Writer.with_pooled (fun w ->
      Wire.Writer.u32_be w len;
      Wire.Writer.byte w (mode_to_byte mode);
      Wire.Writer.raw w body;
      Bytes.unsafe_to_string (Wire.Writer.to_bytes w))

(* The decoder accumulates raw bytes in a growable buffer and consumes
   complete frames off the front.  [pos] is the read cursor; the
   consumed prefix is compacted away lazily (when it exceeds half the
   buffer) so a long-lived connection doesn't grow without bound while
   staying O(bytes) overall. *)
type decoder = { mutable buf : Bytes.t; mutable len : int; mutable pos : int }

let decoder () = { buf = Bytes.create 4096; len = 0; pos = 0 }

let compact d =
  if d.pos > 0 && d.pos * 2 > Bytes.length d.buf then begin
    Bytes.blit d.buf d.pos d.buf 0 (d.len - d.pos);
    d.len <- d.len - d.pos;
    d.pos <- 0
  end

let feed d ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Frame.feed: slice out of bounds";
  compact d;
  let need = d.len + len in
  if need > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit d.buf 0 nb 0 d.len;
    d.buf <- nb
  end;
  Bytes.blit_string s off d.buf d.len len;
  d.len <- d.len + len

let pending d = d.len - d.pos

let reset d =
  d.len <- 0;
  d.pos <- 0

let next d =
  if pending d < 4 then None
  else begin
    let r = Wire.Reader.of_bytes ~off:d.pos ~len:(pending d) d.buf in
    let len = Wire.Reader.u32_be r in
    if len < 1 || len > max_frame then
      raise (Corrupt (Printf.sprintf "bad frame length %d" len));
    if pending d < 4 + len then None
    else begin
      let flag = Wire.Reader.byte r in
      match mode_of_byte flag with
      | None -> raise (Corrupt (Printf.sprintf "unknown flag byte 0x%02x" flag))
      | Some mode ->
          let body = Bytes.sub_string d.buf (d.pos + 5) (len - 1) in
          d.pos <- d.pos + 4 + len;
          Some (mode, body)
    end
  end

let decode_exact s =
  let d = decoder () in
  feed d s;
  match next d with
  | Some f when pending d = 0 -> f
  | Some _ -> raise (Corrupt "trailing bytes after frame")
  | None -> raise (Corrupt "truncated frame")
