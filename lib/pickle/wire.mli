(** Low-level binary wire encoding.

    The pickle combinators ({!Pickle}) are built on this reader/writer
    pair.  Integers use LEB128 variable-length encoding with zigzag for
    signed values; fixed-width values are little-endian.  Decoding
    failures raise {!Error} with a position and message, never a generic
    exception.

    Writers can be checked out of a module-level pool so that steady-state
    encoding reuses already-grown buffers instead of allocating; readers
    can decode a slice of a larger payload in place, without copying it
    out first. *)

exception Error of { pos : int; msg : string }

val error : pos:int -> string -> 'a

module Writer : sig
  type t

  val create : ?initial_size:int -> unit -> t

  (** Bytes written so far. *)
  val length : t -> int

  (** Snapshot of the bytes written so far.  The writer stays usable; the
      returned bytes are a fresh copy owned by the caller. *)
  val to_bytes : t -> bytes

  (** {2 Pooling}

      [checkout]/[return] recycle writers through a bounded {e
      per-domain} pool (domain-local storage, so concurrent engines
      neither contend nor race).  A returned writer is cleared;
      oversized buffers are dropped rather than retained.  Never use a
      writer after returning it, and never return it on a different
      domain than the one that checked it out. *)

  val checkout : unit -> t

  val return : t -> unit

  (** [with_pooled f] checks a writer out, runs [f] on it, and returns it
      to the pool even if [f] raises. *)
  val with_pooled : (t -> 'a) -> 'a

  (** [(hits, misses)] on the calling domain since start (or its last
      {!reset_pool_stats}): checkouts served from the pool vs. fresh
      allocations. *)
  val pool_stats : unit -> int * int

  val reset_pool_stats : unit -> unit

  val byte : t -> int -> unit

  (** Unsigned LEB128. Requires a non-negative argument. *)
  val uvarint : t -> int -> unit

  (** Zigzag-encoded signed LEB128. *)
  val varint : t -> int -> unit

  val int32 : t -> int32 -> unit

  val int64 : t -> int64 -> unit

  (** Unsigned 32-bit value, 4 bytes {e big}-endian — network byte
      order, for socket framing headers.  Requires [0 <= v < 2^32]. *)
  val u32_be : t -> int -> unit

  (** IEEE-754 double, 8 bytes little-endian. *)
  val float : t -> float -> unit

  (** Length-prefixed byte string. *)
  val string : t -> string -> unit

  (** Raw bytes, no length prefix. *)
  val raw : t -> string -> unit
end

module Reader : sig
  type t

  (** [of_string ?off ?len s] reads the slice [off, off+len) of [s]
      (default: all of [s]) without copying it.  Positions reported by
      {!pos} and {!Error} are relative to [off].
      @raise Invalid_argument if the slice is out of bounds. *)
  val of_string : ?off:int -> ?len:int -> string -> t

  (** Like {!of_string} over a byte buffer.  The caller must not mutate
      [data] while the reader is in use. *)
  val of_bytes : ?off:int -> ?len:int -> bytes -> t

  val pos : t -> int

  (** Bytes remaining. *)
  val remaining : t -> int

  (** True when all input is consumed. *)
  val at_end : t -> bool

  val byte : t -> int

  val uvarint : t -> int

  val varint : t -> int

  val int32 : t -> int32

  val int64 : t -> int64

  (** Unsigned 32-bit value, 4 bytes big-endian (see
      {!Writer.u32_be}). *)
  val u32_be : t -> int

  val float : t -> float

  val string : t -> string

  (** [raw r n] reads exactly [n] bytes. *)
  val raw : t -> int -> string

  (** [skip r n] advances past [n] bytes without copying them. *)
  val skip : t -> int -> unit

  (** Fail with a positioned {!Error}. *)
  val fail : t -> string -> 'a
end
