type 'a t = {
  write : Wire.Writer.t -> 'a -> unit;
  read : Wire.Reader.t -> 'a;
  descr : string;
}

let write c = c.write

let read c = c.read

let describe c = c.descr

(* FNV-1a on the structure descriptor: two codecs with the same shape get
   the same fingerprint, so interoperating stubs agree without codegen. *)
let fingerprint c =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    c.descr;
  !h

let magic = 0x4e4f504bl (* "NOPK" *)

let version = 1

let encode c v =
  Wire.Writer.with_pooled (fun w ->
      c.write w v;
      Bytes.unsafe_to_string (Wire.Writer.to_bytes w))

let decode c s =
  let r = Wire.Reader.of_string s in
  let v = c.read r in
  if not (Wire.Reader.at_end r) then Wire.Reader.fail r "trailing bytes";
  v

let decode_slice c s ~off ~len =
  let r = Wire.Reader.of_string ~off ~len s in
  let v = c.read r in
  if not (Wire.Reader.at_end r) then Wire.Reader.fail r "trailing bytes";
  v

let pickle c v =
  Wire.Writer.with_pooled (fun w ->
      Wire.Writer.int32 w magic;
      Wire.Writer.uvarint w version;
      Wire.Writer.int64 w (fingerprint c);
      c.write w v;
      Bytes.unsafe_to_string (Wire.Writer.to_bytes w))

let unpickle c s =
  let r = Wire.Reader.of_string s in
  if Wire.Reader.int32 r <> magic then Wire.Reader.fail r "bad pickle magic";
  let v = Wire.Reader.uvarint r in
  if v <> version then
    Wire.Reader.fail r (Printf.sprintf "unsupported pickle version %d" v);
  let fp = Wire.Reader.int64 r in
  if fp <> fingerprint c then
    Wire.Reader.fail r
      (Printf.sprintf "pickle fingerprint mismatch (expected %s)" c.descr);
  let x = c.read r in
  if not (Wire.Reader.at_end r) then Wire.Reader.fail r "trailing bytes";
  x

let unit =
  { write = (fun _ () -> ()); read = (fun _ -> ()); descr = "unit" }

let bool =
  {
    write = (fun w b -> Wire.Writer.byte w (if b then 1 else 0));
    read =
      (fun r ->
        match Wire.Reader.byte r with
        | 0 -> false
        | 1 -> true
        | n -> Wire.Reader.fail r (Printf.sprintf "bad bool byte %d" n));
    descr = "bool";
  }

let char =
  {
    write = (fun w c -> Wire.Writer.byte w (Char.code c));
    read = (fun r -> Char.chr (Wire.Reader.byte r));
    descr = "char";
  }

let int =
  { write = Wire.Writer.varint; read = Wire.Reader.varint; descr = "int" }

let int32 =
  { write = Wire.Writer.int32; read = Wire.Reader.int32; descr = "int32" }

let int64 =
  { write = Wire.Writer.int64; read = Wire.Reader.int64; descr = "int64" }

let float =
  { write = Wire.Writer.float; read = Wire.Reader.float; descr = "float" }

let string =
  { write = Wire.Writer.string; read = Wire.Reader.string; descr = "string" }

let bytes =
  {
    write = (fun w b -> Wire.Writer.string w (Bytes.to_string b));
    read = (fun r -> Bytes.of_string (Wire.Reader.string r));
    descr = "bytes";
  }

let option c =
  {
    write =
      (fun w -> function
        | None -> Wire.Writer.byte w 0
        | Some v ->
            Wire.Writer.byte w 1;
            c.write w v);
    read =
      (fun r ->
        match Wire.Reader.byte r with
        | 0 -> None
        | 1 -> Some (c.read r)
        | n -> Wire.Reader.fail r (Printf.sprintf "bad option byte %d" n));
    descr = Printf.sprintf "(option %s)" c.descr;
  }

let list c =
  {
    write =
      (fun w xs ->
        Wire.Writer.uvarint w (List.length xs);
        List.iter (c.write w) xs);
    read =
      (fun r ->
        let n = Wire.Reader.uvarint r in
        List.init n (fun _ -> c.read r));
    descr = Printf.sprintf "(list %s)" c.descr;
  }

let array c =
  {
    write =
      (fun w xs ->
        Wire.Writer.uvarint w (Array.length xs);
        Array.iter (c.write w) xs);
    read =
      (fun r ->
        let n = Wire.Reader.uvarint r in
        Array.init n (fun _ -> c.read r));
    descr = Printf.sprintf "(array %s)" c.descr;
  }

let pair a b =
  {
    write =
      (fun w (x, y) ->
        a.write w x;
        b.write w y);
    read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        (x, y));
    descr = Printf.sprintf "(pair %s %s)" a.descr b.descr;
  }

let triple a b c =
  {
    write =
      (fun w (x, y, z) ->
        a.write w x;
        b.write w y;
        c.write w z);
    read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        let z = c.read r in
        (x, y, z));
    descr = Printf.sprintf "(triple %s %s %s)" a.descr b.descr c.descr;
  }

let quad a b c d =
  {
    write =
      (fun w (x, y, z, u) ->
        a.write w x;
        b.write w y;
        c.write w z;
        d.write w u);
    read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        let z = c.read r in
        let u = d.read r in
        (x, y, z, u));
    descr =
      Printf.sprintf "(quad %s %s %s %s)" a.descr b.descr c.descr d.descr;
  }

let result ok err =
  {
    write =
      (fun w -> function
        | Ok v ->
            Wire.Writer.byte w 0;
            ok.write w v
        | Error e ->
            Wire.Writer.byte w 1;
            err.write w e);
    read =
      (fun r ->
        match Wire.Reader.byte r with
        | 0 -> Ok (ok.read r)
        | 1 -> Error (err.read r)
        | n -> Wire.Reader.fail r (Printf.sprintf "bad result byte %d" n));
    descr = Printf.sprintf "(result %s %s)" ok.descr err.descr;
  }

let map ?name into from c =
  {
    write = (fun w v -> c.write w (from v));
    read = (fun r -> into (c.read r));
    descr = (match name with None -> c.descr | Some n -> n);
  }

type 'a case =
  | Case : {
      tag : int;
      name : string;
      codec : 'b t;
      inj : 'b -> 'a;
      prj : 'a -> 'b option;
    }
      -> 'a case

let case tag name codec inj prj = Case { tag; name; codec; inj; prj }

let sum name cases =
  let tags = List.map (fun (Case c) -> c.tag) cases in
  let sorted = List.sort_uniq Int.compare tags in
  if List.length sorted <> List.length tags then
    invalid_arg (Printf.sprintf "Pickle.sum %s: duplicate tags" name);
  let descr =
    Printf.sprintf "(sum %s %s)" name
      (String.concat " "
         (List.map
            (fun (Case c) -> Printf.sprintf "%d:%s" c.tag c.codec.descr)
            cases))
  in
  let write w v =
    let rec go = function
      | [] -> invalid_arg (Printf.sprintf "Pickle.sum %s: no case matches" name)
      | Case c :: rest -> (
          match c.prj v with
          | Some payload ->
              Wire.Writer.uvarint w c.tag;
              c.codec.write w payload
          | None -> go rest)
    in
    go cases
  in
  let read r =
    let tag = Wire.Reader.uvarint r in
    let rec go = function
      | [] ->
          Wire.Reader.fail r
            (Printf.sprintf "sum %s: unknown tag %d" name tag)
      | Case c :: rest ->
          if c.tag = tag then c.inj (c.codec.read r) else go rest
    in
    go cases
  in
  { write; read; descr }

let fix f =
  let rec self =
    {
      write = (fun w v -> (Lazy.force body).write w v);
      read = (fun r -> (Lazy.force body).read r);
      descr = "(fix)";
    }
  and body = lazy (f self) in
  self

let custom ~name ~write ~read = { write; read; descr = name }
