exception Error of { pos : int; msg : string }

let error ~pos msg = raise (Error { pos; msg })

let () =
  Printexc.register_printer (function
    | Error { pos; msg } ->
        Some (Printf.sprintf "Netobj_pickle.Wire.Error(%d): %s" pos msg)
    | _ -> None)

module Writer = struct
  type t = Buffer.t

  let create ?(initial_size = 256) () = Buffer.create initial_size

  let length = Buffer.length

  let to_bytes = Buffer.to_bytes

  (* Per-domain pool of writers.  Checkout reuses a previously returned
     buffer (its capacity already grown by earlier encodes), so steady-state
     encoding stops allocating fresh backing stores.  The pool is bounded and
     drops oversized buffers on return to keep the retained footprint
     predictable.  Domain-local state (not a shared pool behind a lock):
     each domain encodes on its own buffers, so a multi-domain engine never
     contends — or races — here.  Stats are likewise per-domain; callers
     report the stats of the domain they run on (the sim engine's single
     domain sees everything). *)
  type pool_state = {
    stack : Buffer.t Stack.t;
    mutable hits : int;
    mutable misses : int;
  }

  let pool_key : pool_state Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { stack = Stack.create (); hits = 0; misses = 0 })

  let pool_capacity = 64

  (* Buffers whose backing store grew past this are not retained: one huge
     encode should not pin megabytes for the rest of the run. *)
  let max_retained_size = 1 lsl 16

  let checkout () =
    let p = Domain.DLS.get pool_key in
    match Stack.pop_opt p.stack with
    | Some b ->
        p.hits <- p.hits + 1;
        b
    | None ->
        p.misses <- p.misses + 1;
        Buffer.create 256

  let return b =
    let p = Domain.DLS.get pool_key in
    if Stack.length p.stack < pool_capacity
       && Buffer.length b <= max_retained_size
    then begin
      Buffer.clear b;
      Stack.push b p.stack
    end

  let with_pooled f =
    let b = checkout () in
    Fun.protect ~finally:(fun () -> return b) (fun () -> f b)

  let pool_stats () =
    let p = Domain.DLS.get pool_key in
    (p.hits, p.misses)

  let reset_pool_stats () =
    let p = Domain.DLS.get pool_key in
    p.hits <- 0;
    p.misses <- 0

  let byte w n = Buffer.add_char w (Char.chr (n land 0xff))

  let uvarint w n =
    if n < 0 then invalid_arg "Wire.Writer.uvarint: negative";
    let rec go n =
      if n < 0x80 then byte w n
      else begin
        byte w (0x80 lor (n land 0x7f));
        go (n lsr 7)
      end
    in
    go n

  (* Unsigned LEB128 over the full 64-bit range. *)
  let uvarint64 w n =
    let rec go n =
      if Int64.unsigned_compare n 0x80L < 0 then byte w (Int64.to_int n)
      else begin
        byte w (0x80 lor (Int64.to_int n land 0x7f));
        go (Int64.shift_right_logical n 7)
      end
    in
    go n

  (* Zigzag: maps 0,-1,1,-2,... to 0,1,2,3,... so small magnitudes stay
     short on the wire regardless of sign.  Encoded through int64 so the
     full native-int range survives the shift. *)
  let varint w n =
    let n64 = Int64.of_int n in
    uvarint64 w Int64.(logxor (shift_left n64 1) (shift_right n64 63))

  (* Fixed-width scratch is per-domain: a module-level [Bytes.t] would be
     a write-write race when two domains encode concurrently. *)
  let scratch_key : Bytes.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Bytes.create 8)

  let int32 w n =
    let scratch = Domain.DLS.get scratch_key in
    Bytes.set_int32_le scratch 0 n;
    Buffer.add_subbytes w scratch 0 4

  let int64 w n =
    let scratch = Domain.DLS.get scratch_key in
    Bytes.set_int64_le scratch 0 n;
    Buffer.add_subbytes w scratch 0 8

  let u32_be w n =
    if n < 0 || n > 0xffffffff then
      invalid_arg "Wire.Writer.u32_be: out of range";
    let scratch = Domain.DLS.get scratch_key in
    Bytes.set_int32_be scratch 0 (Int32.of_int n);
    Buffer.add_subbytes w scratch 0 4

  let float w f = int64 w (Int64.bits_of_float f)

  let raw w s = Buffer.add_string w s

  let string w s =
    uvarint w (String.length s);
    raw w s
end

module Reader = struct
  (* A reader is a window [base, base+limit) into [data]; [pos] and error
     positions are relative to [base] so a slice reader reports the same
     positions as a reader over a copy of the slice. *)
  type t = { data : string; base : int; limit : int; mutable pos : int }

  let of_string ?(off = 0) ?len data =
    let n = String.length data in
    let len = match len with Some l -> l | None -> n - off in
    if off < 0 || len < 0 || off > n - len then
      invalid_arg "Wire.Reader.of_string: slice out of bounds";
    { data; base = off; limit = len; pos = 0 }

  (* The bytes are never mutated through the reader, so viewing them as an
     immutable string is safe as long as the caller does not mutate [data]
     while decoding — the same contract [of_string] already implies. *)
  let of_bytes ?off ?len data =
    of_string ?off ?len (Bytes.unsafe_to_string data)

  let pos r = r.pos

  let remaining r = r.limit - r.pos

  let at_end r = remaining r = 0

  let fail r msg = error ~pos:r.pos msg

  let byte r =
    if r.pos >= r.limit then fail r "unexpected end of input";
    let c = Char.code (String.unsafe_get r.data (r.base + r.pos)) in
    r.pos <- r.pos + 1;
    c

  let uvarint r =
    let rec go shift acc =
      if shift > 62 then fail r "uvarint overflow";
      let b = byte r in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let uvarint64 r =
    let rec go shift acc =
      if shift > 63 then fail r "uvarint64 overflow";
      let b = byte r in
      let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0L

  let varint r =
    let n = uvarint64 r in
    Int64.to_int
      Int64.(logxor (shift_right_logical n 1) (neg (logand n 1L)))

  let raw r n =
    if n < 0 then fail r "negative length";
    if remaining r < n then fail r "unexpected end of input";
    let s = String.sub r.data (r.base + r.pos) n in
    r.pos <- r.pos + n;
    s

  let skip r n =
    if n < 0 then fail r "negative length";
    if remaining r < n then fail r "unexpected end of input";
    r.pos <- r.pos + n

  let int32 r =
    if remaining r < 4 then fail r "unexpected end of input";
    let v = String.get_int32_le r.data (r.base + r.pos) in
    r.pos <- r.pos + 4;
    v

  let int64 r =
    if remaining r < 8 then fail r "unexpected end of input";
    let v = String.get_int64_le r.data (r.base + r.pos) in
    r.pos <- r.pos + 8;
    v

  let u32_be r =
    if remaining r < 4 then fail r "unexpected end of input";
    let v = String.get_int32_be r.data (r.base + r.pos) in
    r.pos <- r.pos + 4;
    Int32.to_int v land 0xffffffff

  let float r = Int64.float_of_bits (int64 r)

  let string r =
    let n = uvarint r in
    raw r n
end
