(** Typed pickle combinators — the Network Objects marshalling substrate.

    Modula-3 Network Objects marshals method arguments and results with
    "pickles", a general-purpose binary serialiser driven by runtime type
    information.  OCaml has no runtime reflection, so stubs are built from
    first-class codec values instead: a [('a) t] knows how to write and
    read an ['a].  Codecs compose with products, sums, containers and
    fixpoints, and can be made {e contextual} with {!custom} — which is how
    the runtime injects wireRep marshalling (with its transient-dirty side
    effects) into argument pickles.

    Top-level pickles carry a magic number and a codec fingerprint so that
    mismatched stubs fail loudly rather than misparse. *)

type 'a t

(** {1 Running codecs} *)

(** Encode without any header (for embedding in other messages). *)
val encode : 'a t -> 'a -> string

(** Decode a headerless encoding.  Fails with {!Wire.Error} if the input
    is malformed or has trailing bytes. *)
val decode : 'a t -> string -> 'a

(** [decode_slice c s ~off ~len] decodes the slice [off, off+len) of [s]
    in place, without copying it out first.  Error positions are relative
    to [off]. *)
val decode_slice : 'a t -> string -> off:int -> len:int -> 'a

(** Encode with the versioned pickle header (magic, version, fingerprint). *)
val pickle : 'a t -> 'a -> string

(** Decode a headered pickle, checking magic, version and fingerprint. *)
val unpickle : 'a t -> string -> 'a

(** A short human-readable structure descriptor, e.g. ["(pair int string)"].
    Hashed into the header fingerprint. *)
val describe : 'a t -> string

(** {1 Primitives} *)

val unit : unit t

val bool : bool t

val char : char t

(** Zigzag varint; efficient for small magnitudes of either sign. *)
val int : int t

val int32 : int32 t

val int64 : int64 t

val float : float t

val string : string t

val bytes : bytes t

(** {1 Containers} *)

val option : 'a t -> 'a option t

val list : 'a t -> 'a list t

val array : 'a t -> 'a array t

val pair : 'a t -> 'b t -> ('a * 'b) t

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val quad : 'a t -> 'b t -> 'c t -> 'd t -> ('a * 'b * 'c * 'd) t

val result : 'a t -> 'e t -> ('a, 'e) Stdlib.result t

(** {1 Structure} *)

(** Bijective mapping: build a codec for ['b] out of one for ['a]. *)
val map : ?name:string -> ('a -> 'b) -> ('b -> 'a) -> 'a t -> 'b t

(** One arm of a sum type: [case tag name codec inject project] where
    [project] returns [Some payload] exactly on values of this arm. *)
type 'a case

val case : int -> string -> 'b t -> ('b -> 'a) -> ('a -> 'b option) -> 'a case

(** [sum name cases] dispatches on the first case whose projection
    matches (writing) or on the wire tag (reading).  Tags must be unique;
    raises [Invalid_argument] otherwise. *)
val sum : string -> 'a case list -> 'a t

(** Codec fixpoint for recursive types. *)
val fix : ('a t -> 'a t) -> 'a t

(** Escape hatch for contextual codecs (used by the runtime for network
    object references).  [write] and [read] may perform side effects. *)
val custom :
  name:string ->
  write:(Wire.Writer.t -> 'a -> unit) ->
  read:(Wire.Reader.t -> 'a) ->
  'a t

(** {1 Low-level embedding} *)

val write : 'a t -> Wire.Writer.t -> 'a -> unit

val read : 'a t -> Wire.Reader.t -> 'a

(** Fingerprint of the structure descriptor (FNV-1a 64). *)
val fingerprint : 'a t -> int64
