open Effect
open Effect.Deep
module Obs = Netobj_obs.Obs
module Trace = Netobj_obs.Trace

type policy = Fifo | Random of int64

(* The single effect: park the calling fiber and hand a wakeup thunk to
   [register].  Everything blocking (sleep, ivars, mailboxes) is built on
   it, so the handler stays trivial. *)
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

module Timerq = struct
  (* Pairing-heap-free simple implementation: a sorted association list
     would be O(n); use a binary heap in an array for the timer volume the
     lease demons generate. Keys are (deadline, seq) for stable order. *)
  (* [live] is cleared by cancellation; dead entries are skipped by
     [peek]/[pop] so a cancelled timer neither fires nor keeps [run]
     advancing the clock towards its deadline. *)
  type entry = {
    deadline : float;
    seq : int;
    wake : unit -> unit;
    mutable live : bool;
  }

  type t = { mutable heap : entry array; mutable size : int }

  let create () =
    {
      heap = Array.make 16 { deadline = 0.; seq = 0; wake = ignore; live = false };
      size = 0;
    }

  let lt a b = a.deadline < b.deadline || (a.deadline = b.deadline && a.seq < b.seq)

  let push t e =
    if t.size = Array.length t.heap then begin
      let bigger = Array.make (2 * t.size) e in
      Array.blit t.heap 0 bigger 0 t.size;
      t.heap <- bigger
    end;
    t.heap.(t.size) <- e;
    t.size <- t.size + 1;
    let i = ref (t.size - 1) in
    while !i > 0 && lt t.heap.(!i) t.heap.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.heap.(p) in
      t.heap.(p) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := p
    done

  let rec peek t =
    if t.size = 0 then None
    else if t.heap.(0).live then Some t.heap.(0)
    else begin
      drop_root t;
      peek t
    end

  and drop_root t =
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && lt t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && lt t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
    done

  let pop t =
    match peek t with
    | None -> None
    | Some e ->
        drop_root t;
        Some e
end

type t = {
  mutable ready : (unit -> unit) list;  (* reversed enqueue order *)
  mutable ready_front : (unit -> unit) list;
  timers : Timerq.t;
  mutable clock : float;
  mutable timer_seq : int;
  mutable alive : int;
  mutable failures : (string * exn) list;
  rng : Netobj_util.Rng.t option;
}

let create ?(policy = Fifo) () =
  let rng = match policy with Fifo -> None | Random seed -> Some (Netobj_util.Rng.create seed) in
  {
    ready = [];
    ready_front = [];
    timers = Timerq.create ();
    clock = 0.0;
    timer_seq = 0;
    alive = 0;
    failures = [];
    rng;
  }

let enqueue t thunk = t.ready <- thunk :: t.ready

let ready_count t = List.length t.ready + List.length t.ready_front

let dequeue t =
  (match t.ready_front with
  | [] ->
      t.ready_front <- List.rev t.ready;
      t.ready <- []
  | _ -> ());
  match t.ready_front with
  | [] -> None
  | x :: rest -> (
      match t.rng with
      | None ->
          t.ready_front <- rest;
          Some x
      | Some rng ->
          (* Random policy: pick a uniform index across both segments. *)
          let all = t.ready_front @ List.rev t.ready in
          let i = Netobj_util.Rng.int rng (List.length all) in
          let picked = List.nth all i in
          let remaining = List.filteri (fun j _ -> j <> i) all in
          t.ready_front <- remaining;
          t.ready <- [];
          Some picked)

let now t = t.clock

let add_timer t ~deadline wake =
  t.timer_seq <- t.timer_seq + 1;
  Timerq.push t.timers { deadline; seq = t.timer_seq; wake; live = true }

let add_timer_cancel t ~deadline wake =
  t.timer_seq <- t.timer_seq + 1;
  let e = { Timerq.deadline; seq = t.timer_seq; wake; live = true } in
  Timerq.push t.timers e;
  fun () -> e.Timerq.live <- false

(* Fiber life-cycle events (cat "sched", space -1: the scheduler is
   global).  Guarded so the disabled hot path pays one branch. *)
let obs_fiber event name =
  if Obs.on () then
    Trace.instant (Obs.trace ()) ~cat:"sched" ~space:(-1)
      ~args:[ ("fiber", Trace.S name) ]
      event

let exec t name f =
  match_with f ()
    {
      retc =
        (fun () ->
          t.alive <- t.alive - 1;
          obs_fiber "finish" name);
      exnc =
        (fun e ->
          t.alive <- t.alive - 1;
          obs_fiber "fail" name;
          t.failures <- (name, e) :: t.failures);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  obs_fiber "block" name;
                  register (fun () ->
                      obs_fiber "resume" name;
                      enqueue t (fun () -> continue k ())))
          | _ -> None);
    }

let spawn t ?(name = "fiber") f =
  t.alive <- t.alive + 1;
  obs_fiber "spawn" name;
  enqueue t (fun () -> exec t name f)

let suspend register = perform (Suspend register)

let yield _t = suspend (fun wake -> wake ())

let sleep t dt =
  if dt <= 0.0 then yield t
  else suspend (fun wake -> add_timer t ~deadline:(t.clock +. dt) wake)

let timer t dt f = add_timer t ~deadline:(t.clock +. dt) f

let timer_cancel t dt f = add_timer_cancel t ~deadline:(t.clock +. dt) f

let run ?(max_steps = max_int) ?(until = infinity) t =
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < max_steps do
    match dequeue t with
    | Some thunk ->
        incr steps;
        thunk ()
    | None -> (
        match Timerq.peek t.timers with
        | Some e when e.deadline <= until ->
            t.clock <- Float.max t.clock e.deadline;
            if Obs.on () then
              Trace.instant (Obs.trace ()) ~cat:"sched" ~space:(-1)
                ~args:[ ("t", Trace.F t.clock) ]
                "clock";
            (* Release every timer due at this instant before running. *)
            let rec drain () =
              match Timerq.peek t.timers with
              | Some e' when e'.deadline <= t.clock ->
                  (match Timerq.pop t.timers with
                  | Some e'' -> e''.wake ()
                  | None -> ());
                  drain ()
              | _ -> ()
            in
            drain ()
        | _ -> continue := false)
  done;
  !steps

let alive t = t.alive

let stalled t =
  (* Alive fibers minus those with a queued resumption; valid only after
     [run] returned with empty queues. *)
  t.alive - ready_count t

let failures t = t.failures

module Ivar = struct
  type 'a var = { mutable value : 'a option; mutable waiters : (unit -> unit) list }

  let create () = { value = None; waiters = [] }

  let fill v x =
    match v.value with
    | Some _ -> invalid_arg "Ivar.fill: already filled"
    | None ->
        v.value <- Some x;
        let ws = List.rev v.waiters in
        v.waiters <- [];
        List.iter (fun w -> w ()) ws

  let is_filled v = Option.is_some v.value

  let peek v = v.value

  let rec read v =
    match v.value with
    | Some x -> x
    | None ->
        suspend (fun wake -> v.waiters <- wake :: v.waiters);
        read v

  let on_fill v f =
    match v.value with Some _ -> f () | None -> v.waiters <- f :: v.waiters
end

let read_timeout t iv ~timeout =
  if Ivar.is_filled iv then Some (Ivar.read iv)
  else begin
    (* Race the fill against a timer; whichever fires first resumes the
       fiber exactly once. *)
    suspend (fun wake ->
        let woken = ref false in
        let once () =
          if not !woken then begin
            woken := true;
            wake ()
          end
        in
        Ivar.on_fill iv once;
        timer t timeout once);
    Ivar.peek iv
  end

module Mailbox = struct
  type 'a mb = { q : 'a Queue.t; mutable waiters : (unit -> unit) list }

  let create () = { q = Queue.create (); waiters = [] }

  let send mb x =
    Queue.push x mb.q;
    match mb.waiters with
    | [] -> ()
    | ws ->
        (* Wake all waiters; they re-check the queue on resumption, so a
           spurious wakeup is harmless. *)
        mb.waiters <- [];
        List.iter (fun w -> w ()) (List.rev ws)

  let try_recv mb = Queue.take_opt mb.q

  let rec recv mb =
    match Queue.take_opt mb.q with
    | Some x -> x
    | None ->
        suspend (fun wake -> mb.waiters <- wake :: mb.waiters);
        recv mb

  let length mb = Queue.length mb.q
end
