open Effect
open Effect.Deep
module Obs = Netobj_obs.Obs
module Trace = Netobj_obs.Trace

type choice_kind = Fiber | Timer

type chooser = kind:choice_kind -> string array -> int

type policy = Fifo | Random of int64 | Controlled of chooser

(* The single effect: park the calling fiber and hand a wakeup thunk to
   [register].  Everything blocking (sleep, ivars, mailboxes) is built on
   it, so the handler stays trivial. *)
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

module Timerq = struct
  (* Pairing-heap-free simple implementation: a sorted association list
     would be O(n); use a binary heap in an array for the timer volume the
     lease demons generate. Keys are (deadline, seq) for stable order. *)
  (* [live] is cleared by cancellation; dead entries are skipped by
     [peek]/[pop] so a cancelled timer neither fires nor keeps [run]
     advancing the clock towards its deadline. *)
  type entry = {
    deadline : float;
    seq : int;
    name : string;
    wake : unit -> unit;
    mutable live : bool;
  }

  type t = { mutable heap : entry array; mutable size : int }

  let create () =
    {
      heap =
        Array.make 16
          { deadline = 0.; seq = 0; name = ""; wake = ignore; live = false };
      size = 0;
    }

  let lt a b = a.deadline < b.deadline || (a.deadline = b.deadline && a.seq < b.seq)

  let push t e =
    if t.size = Array.length t.heap then begin
      let bigger = Array.make (2 * t.size) e in
      Array.blit t.heap 0 bigger 0 t.size;
      t.heap <- bigger
    end;
    t.heap.(t.size) <- e;
    t.size <- t.size + 1;
    let i = ref (t.size - 1) in
    while !i > 0 && lt t.heap.(!i) t.heap.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.heap.(p) in
      t.heap.(p) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := p
    done

  let rec peek t =
    if t.size = 0 then None
    else if t.heap.(0).live then Some t.heap.(0)
    else begin
      drop_root t;
      peek t
    end

  and drop_root t =
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && lt t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && lt t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
    done

  let pop t =
    match peek t with
    | None -> None
    | Some e ->
        drop_root t;
        Some e
end

(* [phase] counts the fiber's resumptions: it distinguishes a fiber
   about to run for the first time from the same fiber resumed after a
   block in {!pending_fingerprint} (the protocol state can be identical
   while the continuations differ), without polluting the label shown at
   choice points. *)
(* Fiber-local storage: one binding list per fiber, created at [spawn],
   carried across every resumption of that fiber, and dropped with it.
   The runtime uses it to propagate per-call context (the deadline
   budget of the call a fiber is serving) through the blocking extent of
   a method body without threading it through every signature.  Values
   are embedded in [exn] — the standard universal type without [Obj]. *)
type fls_binding = { f_uid : int; f_val : exn }

type fls = fls_binding list ref

type task = { label : string; phase : int; fls : fls; thunk : unit -> unit }

type t = {
  mutable ready : task list;  (* reversed enqueue order *)
  mutable ready_front : task list;
  timers : Timerq.t;
  mutable clock : float;
  mutable timer_seq : int;
  mutable alive : int;
  mutable failures : (string * exn) list;
  policy : policy;
  mutable choices : int;
      (* scheduling choice points consumed so far; indexes the [Random]
         stream so each draw is a pure function of (seed, index) *)
  mutable current : string;
      (* label of the fiber being executed; names [sleep] timers so
         pending-work fingerprints and timer choice points identify the
         sleeper instead of an anonymous "sleep" *)
  root_fls : fls;
      (* the store seen outside any fiber (timer callbacks, main): always
         empty in practice, but keeps [cur_fls] total *)
  mutable cur_fls : fls;
}

let create ?(policy = Fifo) () =
  let root_fls = ref [] in
  {
    ready = [];
    ready_front = [];
    timers = Timerq.create ();
    clock = 0.0;
    timer_seq = 0;
    alive = 0;
    failures = [];
    policy;
    choices = 0;
    current = "main";
    root_fls;
    cur_fls = root_fls;
  }

let enqueue t ?(phase = 0) ?fls label thunk =
  let fls = match fls with Some f -> f | None -> ref [] in
  t.ready <- { label; phase; fls; thunk } :: t.ready

let ready_count t = List.length t.ready + List.length t.ready_front

let choice_points t = t.choices

(* Remove and return element [i] of [ready_front @ List.rev ready],
   leaving the rest in order. *)
let take_nth t i =
  let all = t.ready_front @ List.rev t.ready in
  let picked = List.nth all i in
  t.ready_front <- List.filteri (fun j _ -> j <> i) all;
  t.ready <- [];
  picked

let dequeue t =
  (match t.ready_front with
  | [] ->
      t.ready_front <- List.rev t.ready;
      t.ready <- []
  | _ -> ());
  match t.ready_front with
  | [] -> None
  | x :: rest -> (
      match t.policy with
      | Fifo ->
          t.ready_front <- rest;
          Some x
      | Random seed ->
          (* Pick a uniform index across both segments.  The draw is
             [Rng.int_nth seed i]: a pure function of the seed and the
             choice-point index, never of how the queue happens to be
             split between [ready_front] and [ready], so a recorded
             schedule replays identically.  A lone ready fiber is not a
             choice point and consumes no draw. *)
          let n = ready_count t in
          if n = 1 then begin
            t.ready_front <- rest;
            Some x
          end
          else begin
            let i = Netobj_util.Rng.int_nth seed t.choices n in
            t.choices <- t.choices + 1;
            Some (take_nth t i)
          end
      | Controlled choose ->
          let n = ready_count t in
          if n = 1 then begin
            t.ready_front <- rest;
            Some x
          end
          else begin
            let labels =
              Array.of_list
                (List.map (fun task -> task.label)
                   (t.ready_front @ List.rev t.ready))
            in
            let i = choose ~kind:Fiber labels in
            if i < 0 || i >= n then
              invalid_arg "Sched: controlled chooser returned bad index";
            t.choices <- t.choices + 1;
            Some (take_nth t i)
          end)

let now t = t.clock

let add_timer t ?(name = "timer") ~deadline wake =
  t.timer_seq <- t.timer_seq + 1;
  Timerq.push t.timers { deadline; seq = t.timer_seq; name; wake; live = true }

let add_timer_cancel t ?(name = "timer") ~deadline wake =
  t.timer_seq <- t.timer_seq + 1;
  let e = { Timerq.deadline; seq = t.timer_seq; name; wake; live = true } in
  Timerq.push t.timers e;
  fun () -> e.Timerq.live <- false

(* Fiber life-cycle events (cat "sched", space -1: the scheduler is
   global).  Guarded so the disabled hot path pays one branch. *)
let obs_fiber event name =
  if Obs.on () then
    Trace.instant (Obs.trace ()) ~cat:"sched" ~space:(-1)
      ~args:[ ("fiber", Trace.S name) ]
      event

let exec t ~fls name f =
  let resumes = ref 0 in
  match_with f ()
    {
      retc =
        (fun () ->
          t.alive <- t.alive - 1;
          obs_fiber "finish" name);
      exnc =
        (fun e ->
          t.alive <- t.alive - 1;
          obs_fiber "fail" name;
          t.failures <- (name, e) :: t.failures);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  obs_fiber "block" name;
                  register (fun () ->
                      obs_fiber "resume" name;
                      incr resumes;
                      enqueue t ~phase:!resumes ~fls name (fun () ->
                          continue k ())))
          | _ -> None);
    }

let spawn t ?(name = "fiber") f =
  t.alive <- t.alive + 1;
  obs_fiber "spawn" name;
  let fls = ref [] in
  enqueue t ~fls name (fun () -> exec t ~fls name f)

let suspend register = perform (Suspend register)

let yield _t = suspend (fun wake -> wake ())

let sleep t dt =
  if dt <= 0.0 then yield t
  else
    suspend (fun wake ->
        add_timer t
          ~name:("sleep:" ^ t.current)
          ~deadline:(t.clock +. dt) wake)

let timer t ?name dt f = add_timer t ?name ~deadline:(t.clock +. dt) f

let timer_cancel t ?name dt f = add_timer_cancel t ?name ~deadline:(t.clock +. dt) f

let run ?(max_steps = max_int) ?(until = infinity) t =
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < max_steps do
    match dequeue t with
    | Some task ->
        incr steps;
        t.current <- task.label;
        t.cur_fls <- task.fls;
        task.thunk ()
    | None -> (
        match Timerq.peek t.timers with
        | Some e when e.deadline <= until ->
            (* Timer callbacks run outside any fiber; give them the root
               store so they never read a stale fiber's locals. *)
            t.cur_fls <- t.root_fls;
            t.clock <- Float.max t.clock e.deadline;
            if Obs.on () then
              Trace.instant (Obs.trace ()) ~cat:"sched" ~space:(-1)
                ~args:[ ("t", Trace.F t.clock) ]
                "clock";
            (* Release every timer due at this instant before running.
               Under [Controlled] the release order of same-instant
               timers is a choice point (timer callbacks run inline and
               may mutate state); otherwise they fire in (deadline, seq)
               order as before. *)
            let rec drain () =
              (* Pop all live entries due now, in seq order. *)
              let rec collect acc =
                match Timerq.peek t.timers with
                | Some e' when e'.deadline <= t.clock -> (
                    match Timerq.pop t.timers with
                    | Some e'' -> collect (e'' :: acc)
                    | None -> collect acc)
                | _ -> List.rev acc
              in
              match collect [] with
              | [] -> ()
              | [ e' ] ->
                  e'.Timerq.wake ();
                  drain ()
              | due -> (
                  match t.policy with
                  | Fifo | Random _ ->
                      (* Re-check [live]: an earlier same-instant callback
                         may have cancelled a later sibling. *)
                      List.iter
                        (fun e' -> if e'.Timerq.live then e'.Timerq.wake ())
                        due;
                      drain ()
                  | Controlled choose ->
                      (* Wake one at a time; a callback may cancel a
                         not-yet-woken entry, so re-filter each round. *)
                      let rec go pending =
                        match
                          List.filter (fun e' -> e'.Timerq.live) pending
                        with
                        | [] -> ()
                        | [ e' ] -> e'.Timerq.wake ()
                        | pending ->
                            let labels =
                              Array.of_list
                                (List.map
                                   (fun e' ->
                                     Printf.sprintf "%s#%d" e'.Timerq.name
                                       e'.Timerq.seq)
                                   pending)
                            in
                            let i = choose ~kind:Timer labels in
                            if i < 0 || i >= List.length pending then
                              invalid_arg
                                "Sched: controlled chooser returned bad index";
                            t.choices <- t.choices + 1;
                            (List.nth pending i).Timerq.wake ();
                            go (List.filteri (fun j _ -> j <> i) pending)
                      in
                      go due;
                      drain ())
            in
            drain ()
        | _ -> continue := false)
  done;
  !steps

let alive t = t.alive

let pending_fingerprint t =
  let buf = Buffer.create 256 in
  List.iter
    (fun task ->
      Buffer.add_string buf task.label;
      Buffer.add_string buf (Printf.sprintf "@%d;" task.phase))
    (t.ready_front @ List.rev t.ready);
  Buffer.add_char buf '|';
  (* Timer identity deliberately omits [seq] (monotone per run) and the
     absolute clock: two executions pending the same work relative to now
     fingerprint equal.  Heap array order is layout-dependent, so sort. *)
  let entries = ref [] in
  for i = 0 to t.timers.Timerq.size - 1 do
    let e = t.timers.Timerq.heap.(i) in
    if e.Timerq.live then
      entries := (e.Timerq.deadline -. t.clock, e.Timerq.name) :: !entries
  done;
  List.iter
    (fun (dt, name) -> Buffer.add_string buf (Printf.sprintf "%.9g:%s;" dt name))
    (List.sort compare !entries);
  Hashtbl.hash (Buffer.contents buf)

let stalled t =
  (* Alive fibers minus those with a queued resumption; valid only after
     [run] returned with empty queues. *)
  t.alive - ready_count t

let failures t = t.failures

module Fls = struct
  type 'a key = { uid : int; inj : 'a -> exn; prj : exn -> 'a option }

  (* Keys are minted at module-initialisation time (one per context kind),
     before any domain forks, so a plain counter suffices. *)
  let next_uid = ref 0

  let key (type a) () =
    let module M = struct
      exception V of a
    end in
    incr next_uid;
    {
      uid = !next_uid;
      inj = (fun x -> M.V x);
      prj = (function M.V x -> Some x | _ -> None);
    }

  let get t k =
    let rec find = function
      | [] -> None
      | b :: rest -> if b.f_uid = k.uid then k.prj b.f_val else find rest
    in
    find !(t.cur_fls)

  let set t k v =
    let rest = List.filter (fun b -> b.f_uid <> k.uid) !(t.cur_fls) in
    match v with
    | None -> t.cur_fls := rest
    | Some x -> t.cur_fls := { f_uid = k.uid; f_val = k.inj x } :: rest
end

module Ivar = struct
  type 'a var = { mutable value : 'a option; mutable waiters : (unit -> unit) list }

  let create () = { value = None; waiters = [] }

  let fill v x =
    match v.value with
    | Some _ -> invalid_arg "Ivar.fill: already filled"
    | None ->
        v.value <- Some x;
        let ws = List.rev v.waiters in
        v.waiters <- [];
        List.iter (fun w -> w ()) ws

  let is_filled v = Option.is_some v.value

  let peek v = v.value

  let rec read v =
    match v.value with
    | Some x -> x
    | None ->
        suspend (fun wake -> v.waiters <- wake :: v.waiters);
        read v

  let on_fill v f =
    match v.value with Some _ -> f () | None -> v.waiters <- f :: v.waiters
end

let read_timeout t iv ~timeout =
  if Ivar.is_filled iv then Some (Ivar.read iv)
  else begin
    (* Race the fill against a timer; whichever fires first resumes the
       fiber exactly once. *)
    suspend (fun wake ->
        let woken = ref false in
        let once () =
          if not !woken then begin
            woken := true;
            wake ()
          end
        in
        Ivar.on_fill iv once;
        timer t timeout once);
    Ivar.peek iv
  end

module Mailbox = struct
  type 'a mb = { q : 'a Queue.t; mutable waiters : (unit -> unit) list }

  let create () = { q = Queue.create (); waiters = [] }

  let send mb x =
    Queue.push x mb.q;
    match mb.waiters with
    | [] -> ()
    | ws ->
        (* Wake all waiters; they re-check the queue on resumption, so a
           spurious wakeup is harmless. *)
        mb.waiters <- [];
        List.iter (fun w -> w ()) (List.rev ws)

  let try_recv mb = Queue.take_opt mb.q

  let rec recv mb =
    match Queue.take_opt mb.q with
    | Some x -> x
    | None ->
        suspend (fun wake -> mb.waiters <- wake :: mb.waiters);
        recv mb

  let length mb = Queue.length mb.q
end
