(** Cooperative fibers with a virtual clock.

    Network Objects assumes a threads-and-RPC world: a thread blocks while
    its dirty call is outstanding, the transmitter blocks until the
    receiver acknowledges, demons run in the background.  This module
    reproduces that structure inside one OCaml process using effect
    handlers: fibers are cheap, block on {!Ivar}s/{!Mailbox}es/{!sleep},
    and are interleaved under a configurable policy — deterministic FIFO
    for reproducible tests, or seeded-random to hunt race windows.

    Time is virtual: {!sleep} registers a timer and the clock jumps to the
    next deadline when all fibers are blocked, so a simulated 30-second
    lease expiry costs microseconds of wall clock.

    Blocking operations ({!sleep}, [Ivar.read], [Mailbox.recv]) must be
    called from inside a fiber (i.e. under {!run}); calling them outside
    raises [Effect.Unhandled]. *)

type t

(** What a {!Controlled} choice point ranges over. *)
type choice_kind =
  | Fiber  (** which ready fiber runs next *)
  | Timer  (** which of several timers due at the same instant fires next *)

(** [choose ~kind labels] picks the index of the alternative to run.
    Invoked only when at least two alternatives exist; [labels.(i)] is the
    fiber name (or ["name#seq"] for timers) of alternative [i].  Must
    return an index in [\[0, Array.length labels)]. *)
type chooser = kind:choice_kind -> string array -> int

(** Scheduling policy for ready fibers. *)
type policy =
  | Fifo  (** run in enqueue order: deterministic baseline *)
  | Random of int64
      (** pick a uniformly random ready fiber: adversarial interleavings.
          Each draw is a pure function of (seed, choice-point index) — see
          {!choice_points} — never of the ready queue's internal layout,
          so a recorded schedule replays identically. *)
  | Controlled of chooser
      (** every nondeterministic point (≥ 2 ready fibers, or ≥ 2 timers
          due at the same instant) is surfaced to the callback, which
          dictates the schedule: the hook a model checker drives. *)

val create : ?policy:policy -> unit -> t

(** Number of scheduling choice points consumed so far (points with a
    single alternative don't count). *)
val choice_points : t -> int

(** Register a fiber.  It starts running only under {!run}. *)
val spawn : t -> ?name:string -> (unit -> unit) -> unit

(** Current virtual time, in seconds. *)
val now : t -> float

(** Block the calling fiber for [dt] seconds of virtual time. *)
val sleep : t -> float -> unit

(** Reschedule the calling fiber behind other ready fibers. *)
val yield : t -> unit

(** [timer t dt f] runs [f] at virtual time [now t +. dt] (outside any
    fiber; [f] should only wake fibers or mutate state).  [name] labels
    the timer at {!Controlled} choice points and in traces. *)
val timer : t -> ?name:string -> float -> (unit -> unit) -> unit

(** Like {!timer} but returns a cancel thunk.  A cancelled timer never
    fires and — unlike an ignored one — does not hold {!run} back from
    quiescing: dead entries are skipped without advancing the clock.
    Cancelling after the timer fired (or twice) is a no-op. *)
val timer_cancel : t -> ?name:string -> float -> (unit -> unit) -> unit -> unit

(** Low-level: park the calling fiber and hand the wakeup thunk to the
    callback.  The thunk must be called at most once. *)
val suspend : ((unit -> unit) -> unit) -> unit

(** Run until no fiber is runnable and no timer is pending, or until
    [max_steps] fiber resumptions, or until the clock passes [until].
    Returns the number of steps taken. *)
val run : ?max_steps:int -> ?until:float -> t -> int

(** Fibers spawned and not yet finished (running, ready or blocked). *)
val alive : t -> int

(** Hash of the pending work: ready-fiber labels in queue order plus live
    timers as (deadline − now, name) sets.  Timer sequence numbers and
    the absolute clock are excluded, so two executions with the same work
    outstanding relative to now fingerprint equal — the scheduler's
    contribution to a model checker's state-hash deduplication. *)
val pending_fingerprint : t -> int

(** Fibers blocked with no pending wakeup after {!run} returned: a
    deadlock indicator. *)
val stalled : t -> int

(** Uncaught exceptions from fibers, most recent first, with fiber name. *)
val failures : t -> (string * exn) list

(** Fiber-local storage.

    Each fiber owns a small store created at {!spawn}, carried across
    every suspension/resumption of that fiber, and discarded with it.
    Reads and writes address the {e currently running} fiber's store;
    outside any fiber (timer callbacks, before {!run}) they address a
    root store that fibers never see.  The runtime uses this to
    propagate per-call context — the remaining deadline budget of the
    call a fiber is serving — into nested blocking calls without
    threading it through every signature. *)
module Fls : sig
  type 'a key

  (** Mint a fresh typed key.  Keys are intended to be created once at
      module initialisation. *)
  val key : unit -> 'a key

  (** The current fiber's binding for [key], if any. *)
  val get : t -> 'a key -> 'a option

  (** Set ([Some]) or clear ([None]) the current fiber's binding. *)
  val set : t -> 'a key -> 'a option -> unit
end

(** Write-once synchronisation cell. *)
module Ivar : sig
  type 'a var

  val create : unit -> 'a var

  (** Fill the cell and wake all readers; raises [Invalid_argument] if
      already filled. *)
  val fill : 'a var -> 'a -> unit

  val is_filled : 'a var -> bool

  (** Block until filled, then return the value. *)
  val read : 'a var -> 'a

  val peek : 'a var -> 'a option

  (** Run a callback when the cell is filled (immediately if already). *)
  val on_fill : 'a var -> (unit -> unit) -> unit
end

(** [read_timeout t iv ~timeout] blocks until [iv] is filled or [timeout]
    seconds of virtual time elapse; [None] on timeout. *)
val read_timeout : t -> 'a Ivar.var -> timeout:float -> 'a option

(** Unbounded FIFO mailbox between fibers. *)
module Mailbox : sig
  type 'a mb

  val create : unit -> 'a mb

  (** Never blocks. *)
  val send : 'a mb -> 'a -> unit

  (** Block until a message is available. *)
  val recv : 'a mb -> 'a

  (** Non-blocking receive. *)
  val try_recv : 'a mb -> 'a option

  val length : 'a mb -> int
end
